//! Tiled analog linear layer with optional detection + recovery.

use crate::config::TileConfig;
use crate::error::CimError;
use crate::health::{AbftReport, HealthState, TileEvent, TileEventKind, TileHealth, TileSite};
use crate::tile::{AnalogTile, DriftCompensation, ForwardStats, TileCtx};
use nora_tensor::rng::Rng;
use nora_tensor::Matrix;

/// Stream tag for re-programming rng derivation ("RP").
const REPROGRAM_STREAM: u64 = 0x5250_0000;

/// Deferred side effect of one tile forward on the **keyed** (stateless)
/// decode path: the statistics delta and any ABFT flag the tile would have
/// applied to itself on the sequential path. Collected per caller during a
/// parallel round and absorbed into the layer in a fixed (slot, grid)
/// order via [`AnalogLinear::absorb_tile_effect`], so the layer's
/// accumulated state is bit-identical at any thread count.
#[derive(Debug, Clone)]
pub struct TileEffect {
    entry: usize,
    stats: ForwardStats,
    report: Option<AbftReport>,
}

/// Reusable scratch arena for [`AnalogLinear::forward_single_keyed`]: the
/// per-tile output buffer plus the tile-level conversion scratch. One per
/// concurrent caller (serving slot); reused across layers and decode steps.
#[derive(Debug, Clone, Default)]
pub struct KeyedCtx {
    tile: TileCtx,
    part: Vec<f32>,
}

/// How one grid slot currently executes its weight block.
#[derive(Debug, Clone)]
enum TileSlot {
    /// Served by an analog tile.
    Analog(Box<AnalogTile>),
    /// Served by exact digital GEMV of the raw block (graceful fallback).
    Digital(Matrix),
}

/// One slot of the layer's tile grid.
#[derive(Debug, Clone)]
struct TileEntry {
    r0: usize,
    c0: usize,
    slot: TileSlot,
    health: TileHealth,
    /// Physical array currently serving this slot (changes on remap).
    physical_id: u64,
    /// Pristine rng state for (re-)programming this slot deterministically.
    rng_template: Rng,
}

impl TileEntry {
    fn rows(&self) -> usize {
        match &self.slot {
            TileSlot::Analog(t) => t.rows(),
            TileSlot::Digital(w) => w.rows(),
        }
    }
}

/// A linear layer (`y = x · W + b`) executed on a grid of analog tiles.
///
/// Weight matrices larger than one tile are partitioned: rows (input
/// channels) split across tile rows, columns (output channels) across tile
/// columns. Each tile converts its partial sum through its own ADC — as on
/// real hardware — and the partial sums are accumulated **digitally**, as is
/// the bias. This mirrors the hybrid mapping of the paper's Fig. 2, where
/// only the GEMV itself is analog.
///
/// An optional per-input-channel smoothing vector `s` (length `d_in`)
/// implements the NORA rescaling; each tile receives its row-slice of `s`.
///
/// With an active [`crate::FaultTolerance`] policy the layer additionally
/// verifies every tile's ABFT checksum per forward batch and runs a bounded
/// recovery ladder when a tile is flagged: re-program the same physical
/// array (escalating write–verify and read averaging), then remap the block
/// to a spare array, then fall back to exact digital execution. Every step
/// is recorded as a [`TileEvent`].
///
/// # Example
///
/// ```
/// use nora_cim::{AnalogLinear, TileConfig};
/// use nora_tensor::{Matrix, rng::Rng};
///
/// let mut rng = Rng::seed_from(9);
/// let w = Matrix::random_normal(100, 40, 0.0, 0.2, &mut rng);
/// let cfg = TileConfig::ideal().with_tile_size(32, 32); // forces a 4x2 grid
/// let mut layer = AnalogLinear::new(w.clone(), None, cfg, 1);
/// let x = Matrix::random_normal(3, 100, 0.0, 1.0, &mut rng);
/// assert!(layer.forward(&x).mse(&x.matmul(&w)) < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct AnalogLinear {
    d_in: usize,
    d_out: usize,
    bias: Option<Vec<f32>>,
    entries: Vec<TileEntry>,
    smoothing: Option<Vec<f32>>,
    config: TileConfig,
    /// Raw weight blocks per entry, retained only when recovery is active
    /// (needed for re-programming, remapping, and digital fallback).
    blocks: Vec<Matrix>,
    events: Vec<TileEvent>,
    spares_used: u32,
    next_spare_id: u64,
    /// Construction seed, kept as the layer-level component of the
    /// counter-keyed noise streams (the keyed decode path derives each
    /// row's stream from `(seed, grid coords, request seed, position)`).
    seed: u64,
    /// Reusable per-tile output buffer for the batch-of-1 decode fast path.
    row_scratch: Vec<f32>,
    /// When set, flagged tiles are *not* recovered inline during a forward:
    /// the flag is recorded and the degraded partial sums are served, while
    /// an external maintenance scheduler drains [`AnalogLinear::suspect_tiles`]
    /// via [`AnalogLinear::rotate_tile`] in the background.
    deferred_recovery: bool,
}

/// Outcome of one [`AnalogLinear::recalibrate`] probe pass over the layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecalOutcome {
    /// Global correction factor α̂ applied to every analog tile.
    pub alpha: f32,
    /// Healthy analog tiles whose probe fed the estimate.
    pub probed: usize,
    /// Analog tiles excluded from the estimate because their health state
    /// is quarantined (Suspect or Condemned).
    pub excluded: usize,
}

/// Escalated programming settings for retry attempt `tries` (0 = first try,
/// untouched): write–verify iterations and read averaging double per retry.
fn escalate(config: &TileConfig, tries: u32) -> TileConfig {
    if tries == 0 {
        return config.clone();
    }
    let mut c = config.clone();
    let f = 1u32 << tries.min(4);
    c.write_verify_iters = c.write_verify_iters.saturating_mul(f).min(64);
    c.read_averaging = c.read_averaging.saturating_mul(f).min(16);
    c
}

/// Rng for programming attempt `attempt` of a slot. Attempt 0 uses the
/// pristine template so the no-fault path stays bit-identical to the legacy
/// construction; retries fork decorrelated streams.
fn attempt_rng(template: &Rng, attempt: u32) -> Rng {
    if attempt == 0 {
        template.clone()
    } else {
        let mut r = template.clone();
        r.fork(REPROGRAM_STREAM ^ u64::from(attempt))
    }
}

impl AnalogLinear {
    /// Maps `weights` (`d_in × d_out`) onto analog tiles.
    ///
    /// `seed` derives the per-tile noise streams, so two layers built with
    /// the same arguments behave identically.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, `bias` has the wrong length, or the
    /// config is invalid.
    pub fn new(weights: Matrix, bias: Option<Vec<f32>>, config: TileConfig, seed: u64) -> Self {
        Self::with_smoothing(weights, bias, None, config, seed)
    }

    /// Like [`AnalogLinear::new`] with a NORA smoothing vector of length
    /// `d_in` applied to the mapping (Eq. 6–8).
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as `new`, or if `smoothing` has the
    /// wrong length or non-positive entries.
    pub fn with_smoothing(
        weights: Matrix,
        bias: Option<Vec<f32>>,
        smoothing: Option<&[f32]>,
        config: TileConfig,
        seed: u64,
    ) -> Self {
        Self::try_with_smoothing(weights, bias, smoothing, config, seed)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`AnalogLinear::new`].
    ///
    /// # Errors
    ///
    /// See [`AnalogLinear::try_with_smoothing`].
    pub fn try_new(
        weights: Matrix,
        bias: Option<Vec<f32>>,
        config: TileConfig,
        seed: u64,
    ) -> Result<Self, CimError> {
        Self::try_with_smoothing(weights, bias, None, config, seed)
    }

    /// Fallible variant of [`AnalogLinear::with_smoothing`].
    ///
    /// When the config carries a [`nora_device::FaultPlan`] with programming
    /// failures, construction already runs the recovery ladder per tile:
    /// bounded retries on the same physical array, remap to spare arrays,
    /// then digital fallback (policy permitting) — each recorded in
    /// [`AnalogLinear::events`].
    ///
    /// # Errors
    ///
    /// * [`CimError::EmptyWeights`] — `weights` has no elements.
    /// * [`CimError::BiasLength`] / [`CimError::SmoothingLength`] /
    ///   [`CimError::SmoothingNotPositive`] — malformed vectors.
    /// * [`CimError::InvalidConfig`] — the config fails validation.
    /// * [`CimError::ProgrammingFailed`] — a tile could not be programmed
    ///   and the policy allowed no fallback.
    pub fn try_with_smoothing(
        weights: Matrix,
        bias: Option<Vec<f32>>,
        smoothing: Option<&[f32]>,
        config: TileConfig,
        seed: u64,
    ) -> Result<Self, CimError> {
        if weights.is_empty() {
            return Err(CimError::EmptyWeights);
        }
        config.validate().map_err(CimError::InvalidConfig)?;
        let (d_in, d_out) = weights.shape();
        if let Some(b) = &bias {
            if b.len() != d_out {
                return Err(CimError::BiasLength {
                    expected: d_out,
                    got: b.len(),
                });
            }
        }
        if let Some(s) = smoothing {
            if s.len() != d_in {
                return Err(CimError::SmoothingLength {
                    expected: d_in,
                    got: s.len(),
                });
            }
        }
        let mut root_rng = Rng::seed_from(seed ^ 0x6e6f_7261); // "nora"
        let retain = config.fault_tolerance.is_active();
        let mut entries = Vec::new();
        let mut blocks = Vec::new();
        let mut events = Vec::new();
        let tr = config.tile_rows;
        // With ABFT on, one physical column per tile holds the checksum.
        let tc = config.tile_cols - usize::from(config.fault_tolerance.abft);
        // First pass: partition and collect templates so spare ids start
        // after the grid.
        let mut grid = Vec::new();
        let mut r0 = 0;
        while r0 < d_in {
            let r1 = (r0 + tr).min(d_in);
            let mut c0 = 0;
            while c0 < d_out {
                let c1 = (c0 + tc).min(d_out);
                let tile_rng = root_rng.fork((r0 as u64) << 32 | c0 as u64);
                grid.push((r0, r1, c0, c1, tile_rng));
                c0 = c1;
            }
            r0 = r1;
        }
        let mut next_spare_id = grid.len() as u64;
        let mut spares_used = 0u32;
        for (grid_index, (r0, r1, c0, c1, rng_template)) in grid.into_iter().enumerate() {
            let block = weights.submatrix(r0, r1, c0, c1);
            let s_slice = smoothing.map(|s| &s[r0..r1]);
            let mut health = TileHealth::default();
            let mut physical_id = grid_index as u64;
            let slot = program_slot(
                &block,
                s_slice,
                &config,
                &rng_template,
                &mut health,
                &mut physical_id,
                &mut next_spare_id,
                &mut spares_used,
                &mut events,
                grid_index,
            )?;
            entries.push(TileEntry {
                r0,
                c0,
                slot,
                health,
                physical_id,
                rng_template,
            });
            if retain {
                blocks.push(block);
            }
        }
        Ok(Self {
            d_in,
            d_out,
            bias,
            entries,
            smoothing: smoothing.map(|s| s.to_vec()),
            config,
            blocks,
            events,
            spares_used,
            next_spare_id,
            seed,
            row_scratch: Vec::new(),
            deferred_recovery: false,
        })
    }

    /// Input dimension.
    pub fn d_in(&self) -> usize {
        self.d_in
    }

    /// Output dimension.
    pub fn d_out(&self) -> usize {
        self.d_out
    }

    /// Number of tiles in the grid.
    pub fn tile_count(&self) -> usize {
        self.entries.len()
    }

    /// The smoothing vector installed at construction, if any.
    pub fn smoothing(&self) -> Option<&[f32]> {
        self.smoothing.as_deref()
    }

    /// Degradation events recorded so far, in occurrence order.
    pub fn events(&self) -> &[TileEvent] {
        &self.events
    }

    /// Spare physical tiles consumed by remapping.
    pub fn spares_used(&self) -> u32 {
        self.spares_used
    }

    /// Health trackers of all tile slots, in grid order.
    pub fn tile_health(&self) -> Vec<TileHealth> {
        self.entries.iter().map(|e| e.health).collect()
    }

    /// Number of slots currently served by exact digital fallback.
    pub fn digital_fallback_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.slot, TileSlot::Digital(_)))
            .count()
    }

    /// Executes the layer on a batch: `x` is `batch × d_in`, result is
    /// `batch × d_out`.
    ///
    /// With an active fault-tolerance policy, flagged tiles are recovered
    /// (re-program → remap → digital fallback) *within* this call: the
    /// returned activations come from the recovered slots, not the corrupted
    /// ones.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != d_in`.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.d_in, "input width mismatch");
        let batch = x.rows();
        if batch == 1 {
            return self.forward_single(x);
        }
        let recovery = self.config.fault_tolerance.is_active();
        let mut y = Matrix::zeros(batch, self.d_out);
        // Phase 1 — independent tile forwards, fanned across worker threads.
        // Each entry owns its tile, RNG stream, and statistics, so the
        // per-tile results are bit-identical at any thread count. Tiny
        // fan-outs (small grids, small batches) skip the pool handshake and
        // run the exact serial loop instead — same bits either way.
        let body = |_: usize, e: &mut TileEntry| {
            let x_slice = x.submatrix(0, batch, e.r0, e.r0 + e.rows());
            match &mut e.slot {
                TileSlot::Digital(w) => (x_slice.matmul(w), None),
                TileSlot::Analog(tile) => {
                    if recovery {
                        let (part, report) = tile.forward_checked(&x_slice);
                        let bad = report.suspicious.then_some(report);
                        (part, bad)
                    } else {
                        (tile.forward(&x_slice), None)
                    }
                }
            }
        };
        let per_tile_work = (batch
            * self.config.tile_rows
            * self.config.tile_cols
            * self.config.read_averaging.max(1) as usize) as u64;
        let parts: Vec<(Matrix, Option<AbftReport>)> =
            if nora_parallel::threads_for_work(self.entries.len(), per_tile_work) <= 1 {
                nora_parallel::with_threads(1, || {
                    nora_parallel::map_slice_mut(&mut self.entries, body)
                })
            } else {
                nora_parallel::map_slice_mut(&mut self.entries, body)
            };
        // Phase 2 — serial, in grid-index order: recovery of flagged tiles
        // (which mutates the shared event log / spare pool, so its ordering
        // must not depend on thread scheduling) and digital accumulation of
        // the partial sums (fixed FP summation order).
        for (idx, (part, flagged)) in parts.into_iter().enumerate() {
            let (r0, c0, rows) = {
                let e = &self.entries[idx];
                (e.r0, e.c0, e.rows())
            };
            let part = match flagged {
                Some(report) if self.deferred_recovery => {
                    // Degraded mode: note the flag for the maintenance
                    // scheduler and serve the faulty partial sums as-is —
                    // admission never stops for an inline ladder.
                    self.note_flag(idx, &report);
                    part
                }
                Some(report) => {
                    let x_slice = x.submatrix(0, batch, r0, r0 + rows);
                    self.recover_entry(idx, &x_slice, part, report)
                }
                None => part,
            };
            for i in 0..batch {
                let dst = &mut y.row_mut(i)[c0..c0 + part.cols()];
                for (d, &p) in dst.iter_mut().zip(part.row(i)) {
                    *d += p;
                }
            }
        }
        if let Some(b) = &self.bias {
            for i in 0..batch {
                for (v, &bv) in y.row_mut(i).iter_mut().zip(b) {
                    *v += bv;
                }
            }
        }
        y
    }

    /// Batch-of-1 fast path for single-token decode: each tile reads its
    /// input band straight out of the caller's row and writes into a reused
    /// scratch buffer, skipping the per-tile `submatrix` and partial-result
    /// `Matrix` allocations of the batched path. Running the tiles serially
    /// is bit-identical to the fanned-out path — every tile owns its RNG
    /// stream, and the partial sums are accumulated in grid-index order
    /// either way.
    fn forward_single(&mut self, x: &Matrix) -> Matrix {
        let recovery = self.config.fault_tolerance.is_active();
        let mut y = Matrix::zeros(1, self.d_out);
        let xrow = x.row(0);
        let mut part = std::mem::take(&mut self.row_scratch);
        for idx in 0..self.entries.len() {
            let e = &mut self.entries[idx];
            let (r0, c0, rows) = (e.r0, e.c0, e.rows());
            let xin = &xrow[r0..r0 + rows];
            let flagged = match &mut e.slot {
                TileSlot::Digital(w) => {
                    w.vecmat_into(xin, &mut part);
                    None
                }
                TileSlot::Analog(tile) => {
                    let report = tile.forward_row_checked(xin, &mut part);
                    (recovery && report.suspicious).then_some(report)
                }
            };
            if let Some(report) = flagged {
                if self.deferred_recovery {
                    // Degraded mode: flag and serve the faulty partial sums.
                    self.note_flag(idx, &report);
                } else {
                    // Rare path: recovery mutates the shared event log / spare
                    // pool, so hand it the same Matrix views the batched path
                    // would use.
                    let x_slice = x.submatrix(0, 1, r0, r0 + rows);
                    let faulty = Matrix::from_vec(1, part.len(), part.clone());
                    let recovered = self.recover_entry(idx, &x_slice, faulty, report);
                    part.clear();
                    part.extend_from_slice(recovered.row(0));
                }
            }
            let dst = &mut y.row_mut(0)[c0..c0 + part.len()];
            for (d, &p) in dst.iter_mut().zip(&part) {
                *d += p;
            }
        }
        self.row_scratch = part;
        if let Some(b) = &self.bias {
            for (v, &bv) in y.row_mut(0).iter_mut().zip(b) {
                *v += bv;
            }
        }
        y
    }

    /// Stateless batch-of-1 forward on **counter-keyed** noise streams: the
    /// layer is shared immutably across concurrent callers (serving slots),
    /// and each tile's noise sequence is derived from `(layer seed, tile
    /// grid coordinates, noise_seed, position)` — a pure function of the
    /// request's identity, independent of admission order, batch
    /// composition and thread count.
    ///
    /// `y` (length `d_out`) is overwritten with the layer output. The
    /// statistics deltas and ABFT flags each tile would have applied to
    /// itself are appended to `effects` in grid order; callers absorb them
    /// via [`AnalogLinear::absorb_tile_effect`] after the parallel round,
    /// in a fixed (slot, grid) order. Unlike the sequential path there is
    /// no inline recovery ladder: a flagged tile is recorded (deferred,
    /// [`AnalogLinear::note_flag`]-style) for the external maintenance
    /// scheduler to rotate between rounds.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != d_in` or `y.len() != d_out`.
    pub fn forward_single_keyed(
        &self,
        x: &[f32],
        y: &mut [f32],
        noise_seed: u64,
        position: u64,
        ctx: &mut KeyedCtx,
        effects: &mut Vec<TileEffect>,
    ) {
        assert_eq!(x.len(), self.d_in, "input width mismatch");
        assert_eq!(y.len(), self.d_out, "output width mismatch");
        let recovery = self.config.fault_tolerance.is_active();
        y.fill(0.0);
        let part = &mut ctx.part;
        for (idx, e) in self.entries.iter().enumerate() {
            let (r0, c0, rows) = (e.r0, e.c0, e.rows());
            let xin = &x[r0..r0 + rows];
            match &e.slot {
                TileSlot::Digital(w) => {
                    w.vecmat_into(xin, part);
                }
                TileSlot::Analog(tile) => {
                    let key = [
                        self.seed,
                        (r0 as u64) << 32 | c0 as u64,
                        noise_seed,
                        position,
                    ];
                    let (stats, report) =
                        tile.forward_row_keyed(xin, part, &key, &mut ctx.tile);
                    effects.push(TileEffect {
                        entry: idx,
                        stats,
                        report: (recovery && report.suspicious).then_some(report),
                    });
                }
            }
            let dst = &mut y[c0..c0 + part.len()];
            for (d, &p) in dst.iter_mut().zip(part.iter()) {
                *d += p;
            }
        }
        if let Some(b) = &self.bias {
            for (v, &bv) in y.iter_mut().zip(b) {
                *v += bv;
            }
        }
    }

    /// Folds one keyed-path [`TileEffect`] back into the layer: the tile's
    /// statistics delta is merged and any ABFT flag is recorded for the
    /// maintenance scheduler (the keyed path never runs the inline recovery
    /// ladder). Callers replay effects in a fixed (slot, grid) order, so
    /// the layer state after a parallel round is thread-count invariant.
    pub fn absorb_tile_effect(&mut self, effect: &TileEffect) {
        if let TileSlot::Analog(tile) = &mut self.entries[effect.entry].slot {
            tile.absorb_stats(&effect.stats);
        }
        if let Some(report) = &effect.report {
            self.note_flag(effect.entry, report);
        }
    }

    /// Runs the recovery ladder for a flagged slot and returns the partial
    /// sums to use for the current batch. `faulty_part` is returned
    /// unchanged only when every recovery avenue is exhausted and digital
    /// fallback is disabled.
    fn recover_entry(
        &mut self,
        idx: usize,
        x_slice: &Matrix,
        faulty_part: Matrix,
        report: AbftReport,
    ) -> Matrix {
        let policy = self.config.fault_tolerance.clone();
        let entry = &mut self.entries[idx];
        entry.health.record_flag();
        self.events.push(TileEvent {
            grid_index: idx,
            physical_id: entry.physical_id,
            kind: TileEventKind::Flagged {
                violations: report.violations,
                rows: report.rows_checked,
                silent: report.silent,
            },
        });
        let block = self.blocks[idx].clone();
        let s_slice = self
            .smoothing
            .as_ref()
            .map(|s| s[entry.r0..entry.r0 + block.rows()].to_vec());

        let mut tries_on_current = 0u32;
        loop {
            // Exhausted retries on this array: move to a spare, then give up.
            if tries_on_current > policy.max_reprogram_retries {
                if self.spares_used < policy.spare_tiles {
                    self.spares_used += 1;
                    entry.physical_id = self.next_spare_id;
                    self.next_spare_id += 1;
                    entry.health.remaps += 1;
                    tries_on_current = 0;
                    continue;
                }
                break;
            }
            let remapped = entry.health.remaps > 0;
            let attempt = entry.health.next_attempt();
            let cfg = escalate(&self.config, tries_on_current);
            tries_on_current += 1;
            let site = TileSite {
                physical_id: entry.physical_id,
                programming_attempt: attempt,
            };
            match AnalogTile::try_new_at(
                block.clone(),
                s_slice.as_deref(),
                cfg,
                attempt_rng(&entry.rng_template, attempt),
                site,
            ) {
                Ok(mut tile) => {
                    // Verify with the deterministic probe first (a workload
                    // batch with near-zero activations would pass any tile,
                    // dead ones included), then re-run the triggering batch.
                    if !tile.self_test().suspicious {
                        let (part, rep) = tile.forward_checked(x_slice);
                        if !rep.suspicious {
                            self.events.push(TileEvent {
                                grid_index: idx,
                                physical_id: entry.physical_id,
                                kind: if remapped {
                                    TileEventKind::Remapped {
                                        spare_id: entry.physical_id,
                                    }
                                } else {
                                    TileEventKind::Reprogrammed { attempt }
                                },
                            });
                            entry.slot = TileSlot::Analog(Box::new(tile));
                            return part;
                        }
                    }
                    // Still flagged — same array keeps its stuck cells.
                }
                Err(CimError::ProgrammingFailed { .. }) => {
                    self.events.push(TileEvent {
                        grid_index: idx,
                        physical_id: entry.physical_id,
                        kind: TileEventKind::ProgrammingFailed { attempt },
                    });
                }
                // Config/shape errors cannot appear here: the layer already
                // validated both at construction.
                Err(_) => break,
            }
        }
        entry.health.state = HealthState::Condemned;
        if policy.digital_fallback {
            self.events.push(TileEvent {
                grid_index: idx,
                physical_id: entry.physical_id,
                kind: TileEventKind::DigitalFallback,
            });
            let part = x_slice.matmul(&block);
            entry.slot = TileSlot::Digital(block);
            part
        } else {
            self.events.push(TileEvent {
                grid_index: idx,
                physical_id: entry.physical_id,
                kind: TileEventKind::Unrecovered,
            });
            faulty_part
        }
    }

    /// Aggregated forward statistics across all analog tiles.
    pub fn stats(&self) -> ForwardStats {
        let mut total = ForwardStats::default();
        for e in &self.entries {
            if let TileSlot::Analog(tile) = &e.slot {
                total.merge(tile.stats());
            }
        }
        total
    }

    /// Resets the statistics of every analog tile.
    pub fn reset_stats(&mut self) {
        for e in &mut self.entries {
            if let TileSlot::Analog(tile) = &mut e.slot {
                tile.reset_stats();
            }
        }
    }

    /// Exports the layer's observability metrics into `m`: conversion
    /// stats merged across tiles in grid order, fault-recovery ladder
    /// transitions in occurrence order, the slot health census, digital
    /// fallbacks, and spares consumed.
    ///
    /// Every value derives from state the layer already tracks — the
    /// export reads counters, draws no RNG, and is identical at any
    /// `NORA_THREADS` level.
    pub fn export_metrics(&self, m: &mut nora_obs::Metrics) {
        self.stats().export_metrics(m);
        crate::health::export_events(&self.events, m);
        crate::health::export_health(&self.tile_health(), m);
        m.add("cim.health.digital_fallback_slots", self.digital_fallback_count() as u64);
        m.add("cim.health.spares_used", u64::from(self.spares_used));
    }

    /// Applies conductance drift at `t_seconds` to every analog tile
    /// (digital-fallback slots are unaffected by definition).
    pub fn apply_drift(&mut self, t_seconds: f64, compensation: DriftCompensation) {
        for e in &mut self.entries {
            if let TileSlot::Analog(tile) = &mut e.slot {
                tile.apply_drift(t_seconds, compensation);
            }
        }
    }

    /// Online field-drift step: advances every analog tile to virtual time
    /// `now` via [`AnalogTile::drift_to`] — each tile re-reads at `now`
    /// minus its own programming epoch, so freshly rotated tiles drift from
    /// their rotation time, not from deployment. Digital-fallback slots are
    /// unaffected by definition.
    pub fn drift_to(&mut self, now: f64, compensation: DriftCompensation) {
        for e in &mut self.entries {
            if let TileSlot::Analog(tile) = &mut e.slot {
                tile.drift_to(now, compensation);
            }
        }
    }

    /// Switches the layer between inline recovery (default; flagged tiles
    /// are recovered within the triggering forward) and deferred mode,
    /// where forwards only record flags and an external scheduler rotates
    /// suspects in the background.
    pub fn set_deferred_recovery(&mut self, deferred: bool) {
        self.deferred_recovery = deferred;
    }

    /// Whether deferred recovery is active.
    pub fn deferred_recovery(&self) -> bool {
        self.deferred_recovery
    }

    /// Captures each analog tile's recalibration reference (idempotent per
    /// tile — see [`AnalogTile::capture_probe_reference`]).
    pub fn capture_probe_references(&mut self) {
        for e in &mut self.entries {
            if let TileSlot::Analog(tile) = &mut e.slot {
                tile.capture_probe_reference();
            }
        }
    }

    /// One probe recalibration pass: re-measures the probe magnitude of
    /// every **healthy** analog tile with a captured reference, estimates
    /// the global conductance decay `α̂ = Σ reference / Σ measured`, and
    /// installs the correction on *all* analog tiles (quarantined tiles
    /// drifted by the same global factor — they are excluded only from the
    /// estimate, so their corrupted readings cannot skew it).
    ///
    /// Returns `None` when no healthy tile with a reference exists (the
    /// layer is then left untouched).
    pub fn recalibrate(&mut self) -> Option<RecalOutcome> {
        let mut ref_sum = 0.0f64;
        let mut meas_sum = 0.0f64;
        let mut probed = 0usize;
        let mut excluded = 0usize;
        for e in &mut self.entries {
            let TileSlot::Analog(tile) = &mut e.slot else {
                continue;
            };
            if e.health.state != HealthState::Healthy {
                excluded += 1;
                continue;
            }
            let Some(reference) = tile.probe_reference() else {
                continue;
            };
            ref_sum += reference;
            meas_sum += tile.probe_magnitude();
            probed += 1;
        }
        if probed == 0 || meas_sum <= 0.0 || ref_sum <= 0.0 {
            return None;
        }
        // Clamp to a sane correction range: a tile fleet that decayed past
        // 4× (or somehow *grew*) is a hardware problem recalibration cannot
        // paper over.
        let alpha = ((ref_sum / meas_sum) as f32).clamp(0.25, 4.0);
        for e in &mut self.entries {
            if let TileSlot::Analog(tile) = &mut e.slot {
                tile.apply_recal_scale(alpha);
            }
        }
        Some(RecalOutcome {
            alpha,
            probed,
            excluded,
        })
    }

    /// Grid indices of analog slots currently flagged Suspect — the
    /// maintenance scheduler's rotation work list.
    pub fn suspect_tiles(&self) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                matches!(e.slot, TileSlot::Analog(_)) && e.health.state == HealthState::Suspect
            })
            .map(|(idx, _)| idx)
            .collect()
    }

    /// Completes a background rotation of slot `idx` at virtual time `now`:
    /// the block is re-programmed (write–verify) onto a **spare** array
    /// first — the degraded array never re-enters service — then, with
    /// spares exhausted, onto the current array with escalated programming,
    /// and finally falls back to exact digital execution (policy
    /// permitting). A successfully rotated slot earns its `Healthy` state
    /// back: the fresh array passed the deterministic self-test, its drift
    /// epoch restarts at `now`, and a new recalibration reference is
    /// captured. Returns `true` iff the slot is served by a healthy analog
    /// tile afterwards.
    pub fn rotate_tile(&mut self, idx: usize, now: f64) -> bool {
        let policy = self.config.fault_tolerance.clone();
        if !policy.is_active() || idx >= self.entries.len() {
            return false;
        }
        if matches!(self.entries[idx].slot, TileSlot::Digital(_)) {
            return false;
        }
        let block = self.blocks[idx].clone();
        let entry = &mut self.entries[idx];
        let s_slice = self
            .smoothing
            .as_ref()
            .map(|s| s[entry.r0..entry.r0 + block.rows()].to_vec());
        // Phase 1 — spare arrays: each failed spare (programming failure or
        // self-test flag) consumes the next one.
        while self.spares_used < policy.spare_tiles {
            self.spares_used += 1;
            entry.physical_id = self.next_spare_id;
            self.next_spare_id += 1;
            entry.health.remaps += 1;
            let attempt = entry.health.next_attempt();
            let site = TileSite {
                physical_id: entry.physical_id,
                programming_attempt: attempt,
            };
            match AnalogTile::try_new_at(
                block.clone(),
                s_slice.as_deref(),
                self.config.clone(),
                attempt_rng(&entry.rng_template, attempt),
                site,
            ) {
                Ok(mut tile) => {
                    if !tile.self_test().suspicious {
                        self.events.push(TileEvent {
                            grid_index: idx,
                            physical_id: entry.physical_id,
                            kind: TileEventKind::Remapped {
                                spare_id: entry.physical_id,
                            },
                        });
                        tile.set_programmed_at(now);
                        tile.capture_probe_reference();
                        entry.health.state = HealthState::Healthy;
                        entry.slot = TileSlot::Analog(Box::new(tile));
                        return true;
                    }
                }
                Err(CimError::ProgrammingFailed { .. }) => {
                    self.events.push(TileEvent {
                        grid_index: idx,
                        physical_id: entry.physical_id,
                        kind: TileEventKind::ProgrammingFailed { attempt },
                    });
                }
                Err(_) => break,
            }
        }
        // Phase 2 — escalated re-programming of the current array.
        for tries in 0..=policy.max_reprogram_retries {
            let attempt = entry.health.next_attempt();
            let cfg = escalate(&self.config, tries);
            let site = TileSite {
                physical_id: entry.physical_id,
                programming_attempt: attempt,
            };
            match AnalogTile::try_new_at(
                block.clone(),
                s_slice.as_deref(),
                cfg,
                attempt_rng(&entry.rng_template, attempt),
                site,
            ) {
                Ok(mut tile) => {
                    if !tile.self_test().suspicious {
                        self.events.push(TileEvent {
                            grid_index: idx,
                            physical_id: entry.physical_id,
                            kind: TileEventKind::Reprogrammed { attempt },
                        });
                        tile.set_programmed_at(now);
                        tile.capture_probe_reference();
                        entry.health.state = HealthState::Healthy;
                        entry.slot = TileSlot::Analog(Box::new(tile));
                        return true;
                    }
                }
                Err(CimError::ProgrammingFailed { .. }) => {
                    self.events.push(TileEvent {
                        grid_index: idx,
                        physical_id: entry.physical_id,
                        kind: TileEventKind::ProgrammingFailed { attempt },
                    });
                }
                Err(_) => break,
            }
        }
        // Phase 3 — graceful degradation.
        entry.health.state = HealthState::Condemned;
        if policy.digital_fallback {
            self.events.push(TileEvent {
                grid_index: idx,
                physical_id: entry.physical_id,
                kind: TileEventKind::DigitalFallback,
            });
            entry.slot = TileSlot::Digital(block);
        } else {
            self.events.push(TileEvent {
                grid_index: idx,
                physical_id: entry.physical_id,
                kind: TileEventKind::Unrecovered,
            });
        }
        false
    }

    /// Records a checksum violation in deferred mode: the health ladder
    /// advances every time, but the `Flagged` event is emitted only on the
    /// Healthy → Suspect transition (one event per degradation episode, not
    /// one per served round).
    fn note_flag(&mut self, idx: usize, report: &AbftReport) {
        let entry = &mut self.entries[idx];
        let was_healthy = entry.health.state == HealthState::Healthy;
        entry.health.record_flag();
        if was_healthy {
            self.events.push(TileEvent {
                grid_index: idx,
                physical_id: entry.physical_id,
                kind: TileEventKind::Flagged {
                    violations: report.violations,
                    rows: report.rows_checked,
                    silent: report.silent,
                },
            });
        }
    }

    /// First-order energy/latency estimate summed over all analog tiles (see
    /// [`crate::energy`]).
    pub fn energy(&self, model: &crate::energy::EnergyModel) -> crate::energy::EnergyReport {
        let mut total = crate::energy::EnergyReport::default();
        for e in &self.entries {
            if let TileSlot::Analog(tile) = &e.slot {
                total.merge(&tile.energy(model));
            }
        }
        total
    }
}

/// Construction-time programming ladder for one slot (free function so the
/// constructor can call it before `Self` exists). Mirrors the runtime ladder
/// in [`AnalogLinear::recover_entry`] minus the forward verification.
#[allow(clippy::too_many_arguments)]
fn program_slot(
    block: &Matrix,
    s_slice: Option<&[f32]>,
    config: &TileConfig,
    rng_template: &Rng,
    health: &mut TileHealth,
    physical_id: &mut u64,
    next_spare_id: &mut u64,
    spares_used: &mut u32,
    events: &mut Vec<TileEvent>,
    grid_index: usize,
) -> Result<TileSlot, CimError> {
    let policy = &config.fault_tolerance;
    let mut tries_on_current = 0u32;
    loop {
        if tries_on_current > policy.max_reprogram_retries {
            if *spares_used < policy.spare_tiles {
                *spares_used += 1;
                *physical_id = *next_spare_id;
                *next_spare_id += 1;
                health.remaps += 1;
                tries_on_current = 0;
                continue;
            }
            if policy.digital_fallback {
                health.state = HealthState::Condemned;
                events.push(TileEvent {
                    grid_index,
                    physical_id: *physical_id,
                    kind: TileEventKind::DigitalFallback,
                });
                return Ok(TileSlot::Digital(block.clone()));
            }
            return Err(CimError::ProgrammingFailed {
                physical_id: *physical_id,
                attempt: health.programming_attempts.saturating_sub(1),
            });
        }
        let remapped = health.remaps > 0;
        let attempt = health.next_attempt();
        let cfg = escalate(config, tries_on_current);
        tries_on_current += 1;
        let site = TileSite {
            physical_id: *physical_id,
            programming_attempt: attempt,
        };
        match AnalogTile::try_new_at(
            block.clone(),
            s_slice,
            cfg,
            attempt_rng(rng_template, attempt),
            site,
        ) {
            Ok(mut tile) => {
                // Built-in self-test: a tile that programs without error can
                // still be dead or riddled with stuck cells — probe it before
                // accepting, and keep climbing the ladder if it fails.
                if policy.is_active() {
                    let st = tile.self_test();
                    if st.suspicious {
                        health.record_flag();
                        events.push(TileEvent {
                            grid_index,
                            physical_id: *physical_id,
                            kind: TileEventKind::Flagged {
                                violations: st.violations,
                                rows: st.rows_checked,
                                silent: st.silent,
                            },
                        });
                        continue;
                    }
                }
                if attempt > 0 {
                    events.push(TileEvent {
                        grid_index,
                        physical_id: *physical_id,
                        kind: if remapped {
                            TileEventKind::Remapped {
                                spare_id: *physical_id,
                            }
                        } else {
                            TileEventKind::Reprogrammed { attempt }
                        },
                    });
                }
                return Ok(TileSlot::Analog(Box::new(tile)));
            }
            Err(CimError::ProgrammingFailed { .. }) => {
                events.push(TileEvent {
                    grid_index,
                    physical_id: *physical_id,
                    kind: TileEventKind::ProgrammingFailed { attempt },
                });
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nora_tensor::stats;

    #[test]
    fn single_tile_when_weights_fit() {
        let w = Matrix::zeros(100, 50);
        let layer = AnalogLinear::new(w, None, TileConfig::ideal(), 0);
        assert_eq!(layer.tile_count(), 1);
    }

    #[test]
    fn grid_partitioning_counts() {
        let w = Matrix::zeros(100, 50);
        let cfg = TileConfig::ideal().with_tile_size(32, 20);
        let layer = AnalogLinear::new(w, None, cfg, 0);
        // rows: ceil(100/32)=4, cols: ceil(50/20)=3
        assert_eq!(layer.tile_count(), 12);
        assert_eq!(layer.d_in(), 100);
        assert_eq!(layer.d_out(), 50);
    }

    #[test]
    fn tiled_ideal_forward_matches_matmul() {
        let mut rng = Rng::seed_from(1);
        let w = Matrix::random_normal(70, 45, 0.0, 0.5, &mut rng);
        let x = Matrix::random_normal(6, 70, 0.0, 1.0, &mut rng);
        let cfg = TileConfig::ideal().with_tile_size(16, 16);
        let mut layer = AnalogLinear::new(w.clone(), None, cfg, 2);
        let y = layer.forward(&x);
        assert!(y.mse(&x.matmul(&w)) < 1e-9);
    }

    #[test]
    fn bias_is_added_digitally() {
        let w = Matrix::identity(3);
        let bias = vec![1.0f32, -2.0, 0.5];
        let mut layer = AnalogLinear::new(w, Some(bias), TileConfig::ideal(), 3);
        let x = Matrix::from_rows(&[&[1.0, 1.0, 1.0]]);
        let y = layer.forward(&x);
        assert_eq!(y.row(0), &[2.0, -1.0, 1.5]);
    }

    #[test]
    fn smoothing_vector_is_exact_when_ideal() {
        let mut rng = Rng::seed_from(4);
        let w = Matrix::random_normal(40, 30, 0.0, 0.3, &mut rng);
        let x = Matrix::random_normal(5, 40, 0.0, 1.0, &mut rng);
        let s: Vec<f32> = (0..40).map(|i| 0.1 + (i as f32 % 5.0)).collect();
        let cfg = TileConfig::ideal().with_tile_size(16, 16);
        let mut layer = AnalogLinear::with_smoothing(w.clone(), None, Some(&s), cfg, 5);
        let y = layer.forward(&x);
        assert!(y.mse(&x.matmul(&w)) < 1e-8);
        assert_eq!(layer.smoothing().unwrap().len(), 40);
    }

    #[test]
    fn noisy_tiled_layer_stays_reasonable() {
        let mut rng = Rng::seed_from(6);
        let w = Matrix::random_normal(96, 64, 0.0, 0.2, &mut rng);
        let x = Matrix::random_normal(8, 96, 0.0, 1.0, &mut rng);
        let cfg = TileConfig::paper_default().with_tile_size(48, 32);
        let mut layer = AnalogLinear::new(w.clone(), None, cfg, 7);
        let y = layer.forward(&x);
        let rel = y.mse(&x.matmul(&w)) / stats::variance(x.matmul(&w).as_slice());
        assert!(rel < 0.25, "relative mse {rel}");
    }

    #[test]
    fn stats_aggregate_across_tiles() {
        let mut rng = Rng::seed_from(8);
        let w = Matrix::random_normal(64, 64, 0.0, 0.2, &mut rng);
        let x = Matrix::random_normal(4, 64, 0.0, 1.0, &mut rng);
        let cfg = TileConfig::paper_default().with_tile_size(32, 32);
        let mut layer = AnalogLinear::new(w, None, cfg, 9);
        layer.forward(&x);
        let st = layer.stats();
        // 4 tiles × 4 samples each
        assert_eq!(st.samples, 16);
        assert!(st.mean_rescale() > 0.0);
        layer.reset_stats();
        assert_eq!(layer.stats().samples, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = Rng::seed_from(10);
        let w = Matrix::random_normal(32, 32, 0.0, 0.2, &mut rng);
        let x = Matrix::random_normal(4, 32, 0.0, 1.0, &mut rng);
        let cfg = TileConfig::paper_default().with_tile_size(16, 16);
        let mut a = AnalogLinear::new(w.clone(), None, cfg.clone(), 11);
        let mut b = AnalogLinear::new(w, None, cfg, 11);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn energy_report_scales_with_work() {
        let mut rng = Rng::seed_from(12);
        let w = Matrix::random_normal(64, 64, 0.0, 0.2, &mut rng);
        let x = Matrix::random_normal(4, 64, 0.0, 1.0, &mut rng);
        let cfg = TileConfig::paper_default().with_tile_size(32, 32);
        let mut layer = AnalogLinear::new(w, None, cfg, 13);
        let model = crate::energy::EnergyModel::default();
        let before = layer.energy(&model);
        assert_eq!(before.rounds, 0);
        layer.forward(&x);
        let once = layer.energy(&model);
        layer.forward(&x);
        let twice = layer.energy(&model);
        assert!(once.total_pj() > 0.0);
        assert!(twice.total_pj() >= once.total_pj() * 1.9);
        assert!(twice.latency_ns > once.latency_ns);
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn wrong_bias_length_panics() {
        AnalogLinear::new(
            Matrix::zeros(4, 4),
            Some(vec![0.0; 3]),
            TileConfig::ideal(),
            0,
        );
    }

    #[test]
    #[should_panic(expected = "input width")]
    fn wrong_input_width_panics() {
        let mut layer = AnalogLinear::new(Matrix::zeros(4, 4), None, TileConfig::ideal(), 0);
        layer.forward(&Matrix::zeros(1, 5));
    }

    #[test]
    #[should_panic(expected = "empty weight matrix")]
    fn empty_weights_panic() {
        AnalogLinear::new(Matrix::zeros(0, 0), None, TileConfig::ideal(), 0);
    }

    // ---- fault tolerance: detection + recovery ----------------------

    use crate::health::{FaultTolerance, TileEventKind};
    use nora_device::FaultPlan;

    fn faulty_cfg(plan: FaultPlan) -> TileConfig {
        let mut cfg = TileConfig::paper_default().with_tile_size(32, 33);
        cfg.fault_plan = Some(plan);
        cfg.fault_tolerance = FaultTolerance::protected();
        cfg
    }

    fn setup_64(seed: u64) -> (Matrix, Matrix) {
        let mut rng = Rng::seed_from(seed);
        let w = Matrix::random_normal(64, 64, 0.0, 0.3, &mut rng);
        // Batch large enough that a hard fault is near-certain to violate
        // the checksum at least once within a single forward.
        let x = Matrix::random_normal(32, 64, 0.0, 1.0, &mut rng);
        (w, x)
    }

    #[test]
    fn construction_ladder_survives_programming_failures() {
        let (w, x) = setup_64(31);
        let plan = FaultPlan {
            seed: 1,
            programming_failure: 0.5,
            ..FaultPlan::none()
        };
        let mut layer = AnalogLinear::new(w.clone(), None, faulty_cfg(plan), 32);
        assert!(
            layer
                .events()
                .iter()
                .any(|e| matches!(e.kind, TileEventKind::ProgrammingFailed { .. })),
            "50% failure rate over a 2x2 grid should fail at least once: {:?}",
            layer.events()
        );
        let y = layer.forward(&x);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        let rel = y.mse(&x.matmul(&w)) / stats::variance(x.matmul(&w).as_slice());
        assert!(rel < 0.25, "recovered layer accuracy, rel mse {rel}");
    }

    #[test]
    fn stuck_cells_are_recovered_within_one_forward() {
        let (w, x) = setup_64(33);
        let plan = FaultPlan {
            seed: 2,
            stuck_low: 0.02,
            stuck_high: 0.02,
            ..FaultPlan::none()
        };
        // Baseline: same config, no faults, no protection.
        let mut clean = AnalogLinear::new(
            w.clone(),
            None,
            TileConfig::paper_default().with_tile_size(32, 33),
            34,
        );
        let y_ref = x.matmul(&w);
        let mse_clean = clean.forward(&x).mse(&y_ref);

        let mut layer = AnalogLinear::new(w.clone(), None, faulty_cfg(plan), 34);
        let y = layer.forward(&x);
        let mse = y.mse(&y_ref);
        assert!(
            layer
                .events()
                .iter()
                .any(|e| matches!(e.kind, TileEventKind::Flagged { .. })),
            "4% stuck cells must be flagged: {:?}",
            layer.events()
        );
        // Every physical tile (spares included) draws stuck cells at this
        // rate, so recovery must end in digital fallback — and accuracy
        // must return to the fault-free noisy ballpark.
        assert!(
            mse <= mse_clean * 2.0,
            "recovered mse {mse} vs fault-free {mse_clean}"
        );
    }

    #[test]
    fn dropped_tile_remaps_to_clean_spare() {
        let (w, x) = setup_64(35);
        // Seed chosen so at least one grid tile is dropped while a spare in
        // the pool is clean: recovery should end in a *remap*, not digital
        // fallback (dropout is the only fault class here, so a non-dropped
        // spare is pristine).
        let mut hit = None;
        for plan_seed in 0..64 {
            let plan = FaultPlan {
                seed: plan_seed,
                tile_dropout: 0.5,
                ..FaultPlan::none()
            };
            let mut layer = AnalogLinear::new(w.clone(), None, faulty_cfg(plan), 36);
            layer.forward(&x);
            let remapped = layer
                .events()
                .iter()
                .any(|e| matches!(e.kind, TileEventKind::Remapped { .. }));
            if remapped {
                hit = Some((plan_seed, layer));
                break;
            }
        }
        let (plan_seed, layer) =
            hit.expect("some seed in 0..64 must drop a grid tile and keep a spare clean");
        assert!(layer.spares_used() >= 1, "plan seed {plan_seed}");
        // The remapped layer is healthy: a second forward records no new
        // flags.
        let mut layer = layer;
        let before = layer.events().len();
        let y = layer.forward(&x);
        assert_eq!(layer.events().len(), before, "no new events after remap");
        let rel = y.mse(&x.matmul(&w)) / stats::variance(x.matmul(&w).as_slice());
        assert!(rel < 0.25, "rel mse {rel}");
    }

    #[test]
    fn fallback_slots_survive_drift_and_stats() {
        let (w, x) = setup_64(37);
        let plan = FaultPlan {
            seed: 3,
            tile_dropout: 1.0, // every physical tile dead → all digital
            ..FaultPlan::none()
        };
        let mut layer = AnalogLinear::new(w.clone(), None, faulty_cfg(plan), 38);
        let y = layer.forward(&x);
        assert_eq!(layer.digital_fallback_count(), 4);
        // Digital fallback is exact.
        assert!(y.mse(&x.matmul(&w)) < 1e-9);
        // Post-degradation bookkeeping must not panic or regress.
        layer.apply_drift(3600.0, DriftCompensation::None);
        layer.reset_stats();
        assert_eq!(layer.stats().samples, 0);
        let y2 = layer.forward(&x);
        assert!(y2.mse(&x.matmul(&w)) < 1e-9);
    }

    #[test]
    fn protected_faultless_layer_records_no_events() {
        let (w, x) = setup_64(39);
        let mut cfg = TileConfig::paper_default().with_tile_size(32, 33);
        cfg.fault_tolerance = FaultTolerance::protected();
        let mut layer = AnalogLinear::new(w, None, cfg, 40);
        for _ in 0..5 {
            layer.forward(&x);
        }
        assert!(layer.events().is_empty(), "{:?}", layer.events());
        assert_eq!(layer.spares_used(), 0);
        assert!(layer
            .tile_health()
            .iter()
            .all(|h| h.state == crate::health::HealthState::Healthy));
    }

    #[test]
    fn try_constructors_report_errors() {
        assert_eq!(
            AnalogLinear::try_new(Matrix::zeros(0, 0), None, TileConfig::ideal(), 0).unwrap_err(),
            CimError::EmptyWeights
        );
        let err = AnalogLinear::try_new(
            Matrix::zeros(4, 4),
            Some(vec![0.0; 3]),
            TileConfig::ideal(),
            0,
        )
        .unwrap_err();
        assert_eq!(
            err,
            CimError::BiasLength {
                expected: 4,
                got: 3
            }
        );
        let err = AnalogLinear::try_with_smoothing(
            Matrix::zeros(4, 4),
            None,
            Some(&[1.0; 3]),
            TileConfig::ideal(),
            0,
        )
        .unwrap_err();
        assert_eq!(
            err,
            CimError::SmoothingLength {
                expected: 4,
                got: 3
            }
        );
    }
}
