//! The non-ideality inventory of the paper's Table I.
//!
//! [`NonIdeality`] enumerates every modelled noise source, classified into
//! IO non-idealities (at the analog/digital interface; the ones LLMs are
//! sensitive to) and tile non-idealities (on the array; the ones LLMs
//! tolerate). The sensitivity study (Fig. 3) activates them one at a time at
//! a continuous *severity level* via [`NonIdeality::configure`].

use crate::config::{Resolution, TileConfig, WeightSource};
use std::fmt;

/// Category of a non-ideality (Table I's left column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Appears at the input/output interface (A/D converters, mixed-signal
    /// components).
    Io,
    /// Appears on the analog tile itself (cells, wires).
    Tile,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Category::Io => write!(f, "IO"),
            Category::Tile => write!(f, "Tile"),
        }
    }
}

/// One of the eight modelled non-idealities (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NonIdeality {
    /// ADC quantization noise.
    AdcQuantization,
    /// DAC quantization noise.
    DacQuantization,
    /// Additive system Gaussian noise at the output (before the ADC).
    AdditiveOutputNoise,
    /// Additive system Gaussian noise at the input (after the DAC).
    AdditiveInputNoise,
    /// S-shape device nonlinearity on the input transfer.
    SShapeNonlinearity,
    /// Weight-programming (fabrication) noise.
    ProgrammingNoise,
    /// Short-term cycle-by-cycle weight read noise.
    ShortTermReadNoise,
    /// Wire-resistance IR-drop.
    IrDrop,
}

impl NonIdeality {
    /// All eight non-idealities, in the paper's Fig. 3 panel order.
    pub const ALL: [NonIdeality; 8] = [
        NonIdeality::DacQuantization,
        NonIdeality::AdcQuantization,
        NonIdeality::AdditiveInputNoise,
        NonIdeality::AdditiveOutputNoise,
        NonIdeality::IrDrop,
        NonIdeality::ShortTermReadNoise,
        NonIdeality::SShapeNonlinearity,
        NonIdeality::ProgrammingNoise,
    ];

    /// Table I category.
    pub fn category(self) -> Category {
        match self {
            NonIdeality::AdcQuantization
            | NonIdeality::DacQuantization
            | NonIdeality::AdditiveOutputNoise
            | NonIdeality::AdditiveInputNoise
            | NonIdeality::SShapeNonlinearity => Category::Io,
            NonIdeality::ProgrammingNoise
            | NonIdeality::ShortTermReadNoise
            | NonIdeality::IrDrop => Category::Tile,
        }
    }

    /// Table I noise-type description.
    pub fn kind(self) -> &'static str {
        match self {
            NonIdeality::AdcQuantization | NonIdeality::DacQuantization => "Quantization noise",
            NonIdeality::AdditiveOutputNoise | NonIdeality::AdditiveInputNoise => {
                "System Gaussian noise"
            }
            NonIdeality::SShapeNonlinearity => "Device Nonlinearity",
            NonIdeality::ProgrammingNoise => "Weight fabrication non-ideality",
            NonIdeality::ShortTermReadNoise => "Cycle-by-cycle read variance",
            NonIdeality::IrDrop => "Wire resistance non-ideality",
        }
    }

    /// Short identifier for tables and plots.
    pub fn name(self) -> &'static str {
        match self {
            NonIdeality::AdcQuantization => "adc_quant",
            NonIdeality::DacQuantization => "dac_quant",
            NonIdeality::AdditiveOutputNoise => "out_noise",
            NonIdeality::AdditiveInputNoise => "in_noise",
            NonIdeality::SShapeNonlinearity => "s_shape",
            NonIdeality::ProgrammingNoise => "prog_noise",
            NonIdeality::ShortTermReadNoise => "read_noise",
            NonIdeality::IrDrop => "ir_drop",
        }
    }

    /// Installs *only* this non-ideality at the given severity into an
    /// otherwise-ideal tile configuration.
    ///
    /// The severity `level >= 0` is continuous for every type:
    ///
    /// * quantization: `level` is the relative step width, i.e. the
    ///   converter gets `max(2, round(1/level))` steps (`level → 0` is
    ///   ideal);
    /// * additive noises: Gaussian std in normalised units;
    /// * S-shape: curvature `k`;
    /// * programming noise: multiplier on the published PCM polynomial;
    /// * read noise: std in normalised weight units;
    /// * IR-drop: wire-resistance scale.
    ///
    /// # Panics
    ///
    /// Panics if `level` is negative or non-finite.
    ///
    /// # Example
    ///
    /// ```
    /// use nora_cim::NonIdeality;
    /// let cfg = NonIdeality::AdditiveOutputNoise.configure(0.04);
    /// assert_eq!(cfg.out_noise, 0.04);
    /// assert_eq!(cfg.w_noise, 0.0); // everything else ideal
    /// ```
    pub fn configure(self, level: f32) -> TileConfig {
        let mut cfg = TileConfig::ideal();
        self.apply(&mut cfg, level);
        cfg
    }

    /// Sets this non-ideality's knob to the given severity in an existing
    /// configuration (leaving all other knobs untouched).
    ///
    /// # Panics
    ///
    /// Panics if `level` is negative or non-finite.
    pub fn apply(self, cfg: &mut TileConfig, level: f32) {
        assert!(
            level.is_finite() && level >= 0.0,
            "severity level must be finite and >= 0"
        );
        match self {
            NonIdeality::AdcQuantization => {
                cfg.adc = if level == 0.0 {
                    Resolution::Ideal
                } else {
                    Resolution::Steps(((1.0 / level).round() as u32).max(2))
                };
                if !cfg.adc_bound.is_finite() {
                    cfg.adc_bound = 12.0;
                }
            }
            NonIdeality::DacQuantization => {
                cfg.dac = if level == 0.0 {
                    Resolution::Ideal
                } else {
                    Resolution::Steps(((1.0 / level).round() as u32).max(2))
                };
            }
            NonIdeality::AdditiveOutputNoise => cfg.out_noise = level,
            NonIdeality::AdditiveInputNoise => cfg.in_noise = level,
            NonIdeality::SShapeNonlinearity => cfg.s_shape = level,
            NonIdeality::ProgrammingNoise => {
                cfg.weight_source = if level == 0.0 {
                    WeightSource::Ideal
                } else {
                    WeightSource::Pcm(level)
                };
            }
            NonIdeality::ShortTermReadNoise => cfg.w_noise = level,
            NonIdeality::IrDrop => cfg.ir_drop = level,
        }
    }
}

impl fmt::Display for NonIdeality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_eight_distinct_entries() {
        let mut names: Vec<&str> = NonIdeality::ALL.iter().map(|n| n.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn categories_match_table_i() {
        use NonIdeality::*;
        assert_eq!(AdcQuantization.category(), Category::Io);
        assert_eq!(DacQuantization.category(), Category::Io);
        assert_eq!(AdditiveOutputNoise.category(), Category::Io);
        assert_eq!(AdditiveInputNoise.category(), Category::Io);
        assert_eq!(SShapeNonlinearity.category(), Category::Io);
        assert_eq!(ProgrammingNoise.category(), Category::Tile);
        assert_eq!(ShortTermReadNoise.category(), Category::Tile);
        assert_eq!(IrDrop.category(), Category::Tile);
    }

    #[test]
    fn configure_sets_only_one_knob() {
        let cfg = NonIdeality::AdditiveOutputNoise.configure(0.1);
        assert_eq!(cfg.out_noise, 0.1);
        assert_eq!(cfg.in_noise, 0.0);
        assert_eq!(cfg.w_noise, 0.0);
        assert_eq!(cfg.dac, Resolution::Ideal);
        assert_eq!(cfg.weight_source, WeightSource::Ideal);
    }

    #[test]
    fn quantization_level_maps_to_steps() {
        let cfg = NonIdeality::AdcQuantization.configure(1.0 / 128.0);
        assert_eq!(cfg.adc.steps(), Some(128));
        assert!(cfg.adc_bound.is_finite());
        let dac = NonIdeality::DacQuantization.configure(0.5);
        assert_eq!(dac.dac.steps(), Some(2));
        let ideal = NonIdeality::DacQuantization.configure(0.0);
        assert_eq!(ideal.dac, Resolution::Ideal);
    }

    #[test]
    fn programming_noise_level_zero_is_ideal() {
        let cfg = NonIdeality::ProgrammingNoise.configure(0.0);
        assert_eq!(cfg.weight_source, WeightSource::Ideal);
        let cfg2 = NonIdeality::ProgrammingNoise.configure(2.0);
        assert_eq!(cfg2.weight_source, WeightSource::Pcm(2.0));
    }

    #[test]
    fn apply_preserves_other_settings() {
        let mut cfg = TileConfig::paper_default();
        NonIdeality::IrDrop.apply(&mut cfg, 5.0);
        assert_eq!(cfg.ir_drop, 5.0);
        assert_eq!(cfg.out_noise, 0.04); // untouched
    }

    #[test]
    #[should_panic(expected = "severity level")]
    fn negative_level_panics() {
        NonIdeality::IrDrop.configure(-1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(NonIdeality::AdcQuantization.to_string(), "adc_quant");
        assert_eq!(Category::Io.to_string(), "IO");
    }
}
