//! Error taxonomy of the analog CIM stack.
//!
//! Construction and programming of analog tiles can fail for reasons that a
//! deployment pipeline must handle gracefully — an invalid configuration, a
//! weight block that does not fit the physical array, or a programming
//! sequence aborted by a hard fault. [`CimError`] enumerates them;
//! `try_`-prefixed constructors return `Result<_, CimError>` while the
//! original infallible constructors remain as panicking wrappers.

use std::fmt;

/// Everything that can go wrong when building or programming analog tiles.
#[derive(Debug, Clone, PartialEq)]
pub enum CimError {
    /// The [`crate::TileConfig`] failed validation.
    InvalidConfig(String),
    /// An empty weight matrix was mapped onto a layer.
    EmptyWeights,
    /// The weight block (plus any ABFT checksum columns) does not fit the
    /// configured physical tile.
    OversizedBlock {
        /// Weight-block rows.
        rows: usize,
        /// Weight-block columns (including checksum columns).
        cols: usize,
        /// Physical tile rows.
        tile_rows: usize,
        /// Physical tile columns.
        tile_cols: usize,
    },
    /// The smoothing vector length does not match the input dimension.
    SmoothingLength {
        /// Expected length (`d_in` / block rows).
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// A smoothing factor was non-positive or non-finite.
    SmoothingNotPositive,
    /// The bias vector length does not match the output dimension.
    BiasLength {
        /// Expected length (`d_out`).
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// Programming the tile failed (a hard programming fault drawn from the
    /// configured [`nora_device::FaultPlan`]), after exhausting whatever
    /// retry/spare budget the caller's policy allowed.
    ProgrammingFailed {
        /// Physical tile that refused to program.
        physical_id: u64,
        /// Last attempt number tried (0-based).
        attempt: u32,
    },
}

impl fmt::Display for CimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CimError::InvalidConfig(e) => write!(f, "invalid tile config: {e}"),
            CimError::EmptyWeights => write!(f, "empty weight matrix"),
            CimError::OversizedBlock {
                rows,
                cols,
                tile_rows,
                tile_cols,
            } => write!(
                f,
                "weight block {rows}x{cols} exceeds tile size {tile_rows}x{tile_cols}"
            ),
            CimError::SmoothingLength { expected, got } => write!(
                f,
                "smoothing vector length mismatch: expected {expected}, got {got}"
            ),
            CimError::SmoothingNotPositive => {
                write!(f, "smoothing factors must be finite and positive")
            }
            CimError::BiasLength { expected, got } => {
                write!(f, "bias length mismatch: expected {expected}, got {got}")
            }
            CimError::ProgrammingFailed {
                physical_id,
                attempt,
            } => write!(
                f,
                "programming physical tile {physical_id} failed (attempt {attempt})"
            ),
        }
    }
}

impl std::error::Error for CimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_legacy_panic_substrings() {
        // The panicking wrappers format these errors directly; downstream
        // `#[should_panic(expected = ...)]` tests match on substrings.
        let oversized = CimError::OversizedBlock {
            rows: 600,
            cols: 10,
            tile_rows: 512,
            tile_cols: 512,
        };
        assert!(oversized.to_string().contains("exceeds tile size"));
        assert!(CimError::SmoothingLength { expected: 4, got: 2 }
            .to_string()
            .contains("smoothing vector length"));
        assert!(CimError::SmoothingNotPositive
            .to_string()
            .contains("finite and positive"));
        assert!(CimError::InvalidConfig("x".into())
            .to_string()
            .contains("invalid tile config"));
        assert!(CimError::EmptyWeights.to_string().contains("empty weight matrix"));
        assert!(CimError::BiasLength { expected: 4, got: 3 }
            .to_string()
            .contains("bias length"));
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(CimError::ProgrammingFailed {
            physical_id: 3,
            attempt: 2,
        });
        assert!(e.to_string().contains("physical tile 3"));
    }
}
