//! Tile configuration.

use crate::health::FaultTolerance;
use nora_device::FaultPlan;
use crate::management::{BoundManagement, NoiseManagement};
use nora_device::{NvmModel, PcmModel, ReramModel};

/// Resolution of an A/D or D/A converter.
///
/// `Ideal` disables quantization entirely (infinite resolution, used for the
/// per-non-ideality sensitivity study where only one noise source is active
/// at a time). `Steps(n)` models an `n`-level uniform converter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Infinite resolution — no quantization applied.
    Ideal,
    /// Finite uniform resolution with the given number of steps.
    Steps(u32),
}

impl Resolution {
    /// A `bits`-bit converter (`2^bits` steps).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 24.
    pub fn bits(bits: u32) -> Self {
        assert!((1..=24).contains(&bits), "bits must be in 1..=24");
        Resolution::Steps(1 << bits)
    }

    /// Number of steps, or `None` when ideal.
    pub fn steps(self) -> Option<u32> {
        match self {
            Resolution::Ideal => None,
            Resolution::Steps(n) => Some(n),
        }
    }
}

/// How input vectors are driven onto the wordlines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputEncoding {
    /// One multi-level analog conversion per input (the `dac` resolution
    /// applies). The paper's setting.
    Analog,
    /// Bit-serial drive: the input is quantized to `bits` signed levels and
    /// streamed as binary ±1/0 wordline planes, one analog MAC + A/D
    /// conversion per plane, combined by digital shift-add (ISAAC-style).
    /// Binary drivers are immune to the S-shape driver nonlinearity (their
    /// single drive level is trivially calibrated) at the cost of one
    /// conversion round per bit plane.
    BitSerial {
        /// Signed input resolution in bits (2..=16); `b` bits stream
        /// `b − 1` magnitude planes.
        bits: u32,
    },
}

/// How tile weights acquire their programming-time non-idealities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightSource {
    /// Weights are stored exactly as mapped (no programming error). Used as
    /// the ideal reference and when studying IO non-idealities in isolation.
    Ideal,
    /// Weights pass through the full PCM device model of [`nora_device`]:
    /// programming noise at `program()` time and, via
    /// [`crate::AnalogTile::apply_drift`], conductance drift + accumulated
    /// 1/f read noise. The `f32` is a multiplier on the published
    /// programming-noise polynomial (1.0 = Table II defaults).
    Pcm(f32),
    /// Weights pass through the ReRAM device model (log-normal programming
    /// noise, no inference-scale drift) — the paper's §VII cross-device
    /// extension. The `f32` is the log-conductance programming-noise std.
    Reram(f32),
}

/// Complete configuration of an analog tile.
///
/// [`TileConfig::paper_default`] reproduces the paper's Table II settings;
/// [`TileConfig::ideal`] turns every non-ideality off (the tile then computes
/// an exact GEMV, which the tests rely on).
///
/// Noise magnitudes are expressed in the tile's normalised units: inputs are
/// scaled into `[-1, 1]` before the DAC, weights into `[-1, 1]` before
/// mapping, so `out_noise = 0.04` means a Gaussian with 4% of the DAC
/// full-scale per accumulated output, matching AIHWKIT's convention.
#[derive(Debug, Clone, PartialEq)]
pub struct TileConfig {
    /// Tile rows (input channels per tile). Table II: 512.
    pub tile_rows: usize,
    /// Tile columns (output channels per tile). Table II: 512.
    pub tile_cols: usize,
    /// DAC resolution. Table II: 7 bit (128 steps).
    pub dac: Resolution,
    /// ADC resolution. Table II: 7 bit (128 steps).
    pub adc: Resolution,
    /// DAC full-scale bound in normalised input units (AIHWKIT `inp_bound`).
    pub dac_bound: f32,
    /// ADC full-scale bound in normalised accumulation units (AIHWKIT
    /// `out_bound`). Outputs beyond this saturate.
    pub adc_bound: f32,
    /// Additive Gaussian noise std at the output (before the ADC), in
    /// normalised units. Table II: 0.04.
    pub out_noise: f32,
    /// Additive Gaussian noise std at the input (after the DAC), in
    /// normalised units. Default 0 (scaled up by the sensitivity study).
    pub in_noise: f32,
    /// Short-term (cycle-to-cycle) weight read-noise std in normalised
    /// weight units. Table II: 0.0175.
    pub w_noise: f32,
    /// IR-drop scale (1.0 = nominal wire resistance, 0 = off). Table II: 1.0.
    pub ir_drop: f32,
    /// S-shape nonlinearity strength (0 = perfectly linear DAC transfer).
    pub s_shape: f32,
    /// Weight programming path.
    pub weight_source: WeightSource,
    /// Digital quantization of the mapped weights (`Ideal` = continuous
    /// analog conductances). Finite values model digital weight-quantized
    /// execution (e.g. W8A8) or multi-cell NVM encodings with discrete
    /// levels.
    pub weight_quant: Resolution,
    /// Number of significance slices (cell pairs) storing each weight, with
    /// closed-loop residual correction between slices (paper §VII:
    /// "over 8-bit weight precision by using multiple memory cells").
    /// 1 = single-pair storage.
    pub weight_slices: u32,
    /// Significance radix between consecutive weight slices.
    pub slice_radix: f32,
    /// Maximum cell conductance in µS (used by the device model).
    pub g_max: f32,
    /// Wordline drive scheme.
    pub input_encoding: InputEncoding,
    /// Write–verify iterations used when programming weights onto the
    /// device (1 = single-shot; the paper's §II "write-verify memory
    /// programming process" uses several).
    pub write_verify_iters: u32,
    /// Number of repeated analog conversions averaged per MVM (≥ 1).
    /// Averaging suppresses the *stochastic* per-cycle noises (short-term
    /// read noise, additive input/output noise) by `1/√n` at `n×` the
    /// conversion energy/latency; quantization and deterministic errors are
    /// untouched.
    pub read_averaging: u32,
    /// Dynamic input-range policy (the paper's "noise management").
    pub noise_management: NoiseManagement,
    /// ADC saturation recovery policy (the paper's "bound management").
    pub bound_management: BoundManagement,
    /// When `true`, weights that map to an exact-zero normalised value
    /// (pruned N:M cells) are left genuinely *unprogrammed*: the device
    /// draw is skipped, both pair sides stay at 0 µS forever, and
    /// [`TileConfig::noise_budget`] reports zero programming error for
    /// them — so pruning shrinks both the energy-driving conductance mass
    /// and the analytic noise budget. Default `false` keeps the legacy
    /// behaviour (a zero weight still burns RNG draws and carries the
    /// half-normal PCM floor), preserving bit-compatibility of every
    /// seeded result. Only the single-slice programming path prunes;
    /// `weight_slices > 1` ignores the flag.
    pub prune_zero_cells: bool,
    /// Hard-fault injection plan (`None` = pristine arrays). Defect maps are
    /// drawn per *physical* tile id, so they persist across re-programming
    /// and differ on spare tiles.
    pub fault_plan: Option<FaultPlan>,
    /// ABFT detection + retry/remap/fallback policy.
    /// [`FaultTolerance::off`] keeps the legacy path bit-identical.
    pub fault_tolerance: FaultTolerance,
}

impl TileConfig {
    /// The paper's Table II configuration.
    ///
    /// 7-bit converters, `out_noise` 0.04, `w_noise` 0.0175, `ir_drop` 1.0,
    /// 512×512 tiles, PCM programming noise at the published level, AbsMax
    /// noise management and iterative bound management (the AIHWKIT
    /// defaults the paper inherits).
    pub fn paper_default() -> Self {
        Self {
            tile_rows: 512,
            tile_cols: 512,
            dac: Resolution::bits(7),
            adc: Resolution::bits(7),
            dac_bound: 1.0,
            adc_bound: 12.0,
            out_noise: 0.04,
            in_noise: 0.0,
            w_noise: 0.0175,
            ir_drop: 1.0,
            s_shape: 0.0,
            weight_source: WeightSource::Pcm(1.0),
            weight_quant: Resolution::Ideal,
            weight_slices: 1,
            slice_radix: 8.0,
            g_max: 25.0,
            input_encoding: InputEncoding::Analog,
            read_averaging: 1,
            write_verify_iters: 1,
            noise_management: NoiseManagement::AbsMax,
            bound_management: BoundManagement::Iterative { max_rounds: 3 },
            prune_zero_cells: false,
            fault_plan: None,
            fault_tolerance: FaultTolerance::off(),
        }
    }

    /// A tile with every non-ideality disabled: computes exact GEMV.
    pub fn ideal() -> Self {
        Self {
            tile_rows: 512,
            tile_cols: 512,
            dac: Resolution::Ideal,
            adc: Resolution::Ideal,
            dac_bound: 1.0,
            adc_bound: f32::INFINITY,
            out_noise: 0.0,
            in_noise: 0.0,
            w_noise: 0.0,
            ir_drop: 0.0,
            s_shape: 0.0,
            weight_source: WeightSource::Ideal,
            weight_quant: Resolution::Ideal,
            weight_slices: 1,
            slice_radix: 8.0,
            g_max: 25.0,
            input_encoding: InputEncoding::Analog,
            read_averaging: 1,
            write_verify_iters: 1,
            noise_management: NoiseManagement::AbsMax,
            bound_management: BoundManagement::None,
            prune_zero_cells: false,
            fault_plan: None,
            fault_tolerance: FaultTolerance::off(),
        }
    }

    /// A *digital* weight/activation-quantized execution baseline
    /// (default: W8A8 — 8-bit per-column weights, 8-bit dynamically scaled
    /// activations, no analog noise). With a NORA/SmoothQuant smoothing
    /// vector installed this reproduces digital SmoothQuant; without one it
    /// is plain dynamic W8A8 quantization.
    pub fn digital_quant(bits: u32) -> Self {
        Self {
            dac: Resolution::bits(bits),
            adc: Resolution::Ideal,
            adc_bound: f32::INFINITY,
            weight_quant: Resolution::bits(bits),
            ..Self::ideal()
        }
    }

    /// Returns `paper_default` with the tile size overridden (tests and the
    /// MSE-matching harness use smaller tiles).
    pub fn with_tile_size(mut self, rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "tile size must be positive");
        self.tile_rows = rows;
        self.tile_cols = cols;
        self
    }

    /// Returns this config with pruned-cell programming switched on or off
    /// (see [`TileConfig::prune_zero_cells`]).
    pub fn with_pruned_zeros(mut self, prune: bool) -> Self {
        self.prune_zero_cells = prune;
        self
    }

    /// Returns this config with a hard-fault injection plan installed.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Returns this config with the given detection/recovery policy.
    pub fn with_fault_tolerance(mut self, policy: FaultTolerance) -> Self {
        self.fault_tolerance = policy;
        self
    }

    /// Builds the input DAC implied by this config (`dac` resolution over
    /// `±dac_bound`).
    ///
    /// This is the single constructor for the deploy-path input grid: the
    /// tile forward and the hardware-aware STE trainer both obtain their
    /// DAC from here, so the training-time fake-quantization grid cannot
    /// drift from the grid the simulator converts with.
    pub fn input_dac(&self) -> crate::converter::Dac {
        crate::converter::Dac::new(self.dac, self.dac_bound)
    }

    /// Builds the digital weight-programming quantizer implied by this
    /// config, if any (`weight_quant` steps over the normalised `±1`
    /// weight range), `None` when conductances are continuous.
    ///
    /// Shared by tile programming and the STE trainer for the same reason
    /// as [`TileConfig::input_dac`].
    pub fn weight_quantizer(&self) -> Option<nora_tensor::quant::Quantizer> {
        self.weight_quant
            .steps()
            .map(|n| nora_tensor::quant::Quantizer::new(n, 1.0))
    }

    /// Builds the NVM device model implied by this config, if any.
    pub fn device_model(&self) -> Option<Box<dyn NvmModel>> {
        match self.weight_source {
            WeightSource::Ideal => None,
            WeightSource::Pcm(scale) => Some(Box::new(PcmModel {
                g_max: self.g_max,
                prog_noise_scale: scale,
                ..PcmModel::default()
            })),
            WeightSource::Reram(sigma_ln) => Some(Box::new(ReramModel {
                g_max: self.g_max,
                sigma_ln,
                read_sigma_rel: 0.0, // white read noise is covered by w_noise
            })),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.tile_rows == 0 || self.tile_cols == 0 {
            return Err("tile size must be positive".into());
        }
        if self.dac_bound.is_nan() || self.dac_bound <= 0.0 {
            return Err("dac_bound must be positive".into());
        }
        if self.adc_bound.is_nan() || self.adc_bound <= 0.0 {
            return Err("adc_bound must be positive".into());
        }
        for (name, v) in [
            ("out_noise", self.out_noise),
            ("in_noise", self.in_noise),
            ("w_noise", self.w_noise),
            ("ir_drop", self.ir_drop),
            ("s_shape", self.s_shape),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and >= 0"));
            }
        }
        match self.weight_source {
            WeightSource::Pcm(s) | WeightSource::Reram(s) => {
                if !s.is_finite() || s < 0.0 {
                    return Err("programming-noise scale must be finite and >= 0".into());
                }
            }
            WeightSource::Ideal => {}
        }
        if self.weight_slices == 0 {
            return Err("weight_slices must be at least 1".into());
        }
        if self.weight_slices > 1 && (self.slice_radix.is_nan() || self.slice_radix <= 1.0) {
            return Err("slice_radix must exceed 1 when slicing".into());
        }
        if let InputEncoding::BitSerial { bits } = self.input_encoding {
            if !(2..=16).contains(&bits) {
                return Err("bit-serial input bits must be in 2..=16".into());
            }
        }
        if self.read_averaging == 0 {
            return Err("read_averaging must be at least 1".into());
        }
        if self.write_verify_iters == 0 {
            return Err("write_verify_iters must be at least 1".into());
        }
        if let Some(plan) = &self.fault_plan {
            plan.validate()?;
        }
        self.fault_tolerance.validate()?;
        if self.fault_tolerance.abft && self.tile_cols < 2 {
            return Err("ABFT needs at least 2 tile columns (one is the checksum)".into());
        }
        Ok(())
    }
}

impl Default for TileConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_ii() {
        let c = TileConfig::paper_default();
        assert_eq!(c.dac.steps(), Some(128));
        assert_eq!(c.adc.steps(), Some(128));
        assert_eq!(c.out_noise, 0.04);
        assert_eq!(c.w_noise, 0.0175);
        assert_eq!(c.ir_drop, 1.0);
        assert_eq!((c.tile_rows, c.tile_cols), (512, 512));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn ideal_config_has_everything_off() {
        let c = TileConfig::ideal();
        assert_eq!(c.dac, Resolution::Ideal);
        assert_eq!(c.adc, Resolution::Ideal);
        assert_eq!(c.out_noise, 0.0);
        assert_eq!(c.w_noise, 0.0);
        assert_eq!(c.weight_source, WeightSource::Ideal);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn resolution_bits() {
        assert_eq!(Resolution::bits(7).steps(), Some(128));
        assert_eq!(Resolution::Ideal.steps(), None);
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn resolution_zero_bits_panics() {
        Resolution::bits(0);
    }

    #[test]
    fn validate_rejects_bad_fields() {
        let mut c = TileConfig::paper_default();
        c.out_noise = -1.0;
        assert!(c.validate().is_err());
        let mut c2 = TileConfig::paper_default();
        c2.tile_rows = 0;
        assert!(c2.validate().is_err());
        let mut c3 = TileConfig::paper_default();
        c3.weight_source = WeightSource::Pcm(f32::NAN);
        assert!(c3.validate().is_err());
    }

    #[test]
    fn device_model_propagates_settings() {
        let mut c = TileConfig::paper_default();
        c.weight_source = WeightSource::Pcm(2.5);
        let m = c.device_model().unwrap();
        assert_eq!(m.g_max(), c.g_max);
        c.weight_source = WeightSource::Ideal;
        assert!(c.device_model().is_none());
        c.weight_source = WeightSource::Reram(0.1);
        assert!(c.device_model().is_some());
    }

    #[test]
    fn with_tile_size_overrides() {
        let c = TileConfig::paper_default().with_tile_size(64, 32);
        assert_eq!((c.tile_rows, c.tile_cols), (64, 32));
    }

    #[test]
    fn fault_fields_default_off_and_validate() {
        let c = TileConfig::paper_default();
        assert!(c.fault_plan.is_none());
        assert!(!c.fault_tolerance.is_active());

        let mut plan = FaultPlan::none();
        plan.dead_col = 2.0; // invalid rate
        let bad = TileConfig::paper_default().with_fault_plan(plan);
        assert!(bad.validate().is_err());

        let protected = TileConfig::paper_default()
            .with_fault_plan(FaultPlan::uniform(0.01, 0.0, 7))
            .with_fault_tolerance(FaultTolerance::protected());
        assert!(protected.validate().is_ok());

        let tiny = TileConfig::ideal()
            .with_tile_size(4, 1)
            .with_fault_tolerance(FaultTolerance::protected());
        assert!(tiny.validate().is_err(), "no room for a checksum column");
    }
}
