//! Zero-dependency observability primitives for the NORA stack.
//!
//! The stack's components (tiles, the recovery ladder, the serving engine,
//! the sweep executor) accumulate what they did into [`Metrics`] — a
//! deterministic registry of named [`Counter`]s and fixed-edge
//! [`Histogram`]s — and export it on demand through a [`Recorder`].
//!
//! # The bit-identity contract
//!
//! Observation is *passive*: attaching any recorder must leave every model
//! output bit-identical at every `NORA_THREADS` level. Three rules enforce
//! this, mirroring the threading model of `nora-parallel`:
//!
//! 1. **No RNG coupling.** Nothing in this crate draws from (or seeds) a
//!    random stream, and instrumented components never make an RNG draw
//!    conditional on whether observation is enabled.
//! 2. **Deterministic aggregation.** Components accumulate into *local*
//!    metric state and merge in a structural order — tile-grid index, slot
//!    index, sweep-task index — never in wall-clock completion order. All
//!    counter values (and histogram *counts* of deterministic quantities)
//!    are therefore identical at any thread count.
//! 3. **Timings are telemetry.** Span durations measured with [`Stopwatch`]
//!    vary run to run; they are recorded, but nothing downstream of a
//!    timing feeds back into computation.
//!
//! # Example
//!
//! ```
//! use nora_obs::{Metrics, Recorder, MemoryRecorder};
//!
//! let mut m = Metrics::new();
//! m.add("cim.dac.clipped_inputs", 3);
//! m.observe("serve.service_secs", nora_obs::edges::LATENCY_SECS, 0.002);
//!
//! let mut rec = MemoryRecorder::default();
//! m.emit(&mut rec);
//! assert_eq!(rec.counters["cim.dac.clipped_inputs"], 3);
//! ```

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::time::{Duration, Instant};

/// Canonical fixed bucket edges shared by the instrumented crates.
///
/// Fixed edges (rather than adaptive ones) keep histogram aggregation
/// deterministic: merging two histograms is element-wise bucket addition,
/// independent of the order observations arrived in.
pub mod edges {
    /// Wall-clock latencies in seconds, 1 µs .. 10 s.
    pub const LATENCY_SECS: &[f64] = &[
        1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
    ];
    /// Dimensionless rates/fractions in `[0, 1]`.
    pub const RATE: &[f64] = &[0.0, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25, 0.5, 1.0];
    /// Small integer counts (retry rounds, decode steps, …).
    pub const COUNT: &[f64] = &[0.5, 1.5, 2.5, 4.5, 8.5, 16.5, 32.5, 64.5, 128.5];
    /// Throughputs in events per second (tokens/s over time, …), decade
    /// buckets from 1/s to 1M/s.
    pub const THROUGHPUT: &[f64] = &[1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6];
}

/// A monotone event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self(0)
    }

    /// Adds `delta` occurrences.
    pub fn add(&mut self, delta: u64) {
        self.0 += delta;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &Counter) {
        self.0 += other.0;
    }
}

/// A histogram over fixed, caller-supplied bucket edges.
///
/// `edges = [e0, e1, …, eN]` defines `N + 1` buckets: `(-∞, e0]`,
/// `(e0, e1]`, …, `(eN, ∞)`. Edges are fixed at construction so merging is
/// order-independent bucket addition.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    nan_count: u64,
}

impl Histogram {
    /// An empty histogram over `edges` (must be non-empty and strictly
    /// increasing).
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly increasing.
    pub fn new(edges: &[f64]) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        Self {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            count: 0,
            sum: 0.0,
            nan_count: 0,
        }
    }

    /// Records one observation.
    ///
    /// NaN is counted in [`Histogram::nan_count`] instead of a bucket:
    /// every `<` comparison with NaN is false, so `partition_point` would
    /// silently file it into the lowest bucket and poison `sum`.
    pub fn observe(&mut self, value: f64) {
        if value.is_nan() {
            self.nan_count += 1;
            return;
        }
        // partition_point: first bucket whose upper edge is >= value.
        let idx = self.edges.partition_point(|&e| e < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of NaN observations rejected from the buckets (not included
    /// in [`Histogram::count`] or [`Histogram::sum`]).
    pub fn nan_count(&self) -> u64 {
        self.nan_count
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The bucket edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Per-bucket counts (`edges().len() + 1` entries; the last is the
    /// overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket edges differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.edges, other.edges,
            "cannot merge histograms with different edges"
        );
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.nan_count += other.nan_count;
    }
}

/// A started wall-clock span timer.
///
/// Thin wrapper over [`Instant`] so instrumented code carries one obs type
/// instead of ad-hoc `Instant` arithmetic. Timings are telemetry only — see
/// the crate-level bit-identity contract.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed seconds as `f64` (histogram-observation friendly).
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// A deterministic registry of named counters and histograms.
///
/// Names are sorted (BTreeMap), so iteration/emission order is stable and
/// two registries built from the same event multiset compare equal with
/// `==` regardless of arrival order across merges.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name` (created at zero on first use).
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            c.add(delta);
        } else {
            let mut c = Counter::new();
            c.add(delta);
            self.counters.insert(name.to_string(), c);
        }
    }

    /// Records `value` into the histogram `name`, creating it over `edges`
    /// on first use.
    ///
    /// # Panics
    ///
    /// Panics if the histogram exists with different edges.
    pub fn observe(&mut self, name: &str, edges: &[f64], value: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            assert_eq!(h.edges(), edges, "histogram {name} redefined with new edges");
            h.observe(value);
        } else {
            let mut h = Histogram::new(edges);
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, Counter::get)
    }

    /// The histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Merges another registry into this one (counter addition, histogram
    /// bucket addition). Merge is commutative and associative, so any
    /// structural merge order yields the same registry.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, c) in &other.counters {
            if let Some(mine) = self.counters.get_mut(name) {
                mine.merge(c);
            } else {
                self.counters.insert(name.clone(), *c);
            }
        }
        for (name, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(name) {
                mine.merge(h);
            } else {
                self.histograms.insert(name.clone(), h.clone());
            }
        }
    }

    /// Emits every counter then every histogram, in name order, to `rec`.
    pub fn emit(&self, rec: &mut dyn Recorder) {
        for (name, value) in self.counters() {
            rec.counter(name, value);
        }
        for (name, h) in self.histograms() {
            rec.histogram(name, h);
        }
    }

    /// The deterministic subset of this registry: counter names and values
    /// only, for cross-thread-count equality assertions in tests.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        self.counters()
            .map(|(name, value)| (name.to_string(), value))
            .collect()
    }
}

/// Sink for exported metrics and span events.
///
/// All methods default to no-ops, so `NoopRecorder` is just the trait's
/// defaults and custom sinks override only what they store. Recorders are
/// invoked from a single thread at deterministic export points — they never
/// observe wall-clock interleaving of workers.
pub trait Recorder {
    /// A counter's aggregated value.
    fn counter(&mut self, _name: &str, _value: u64) {}

    /// A histogram's aggregated state.
    fn histogram(&mut self, _name: &str, _hist: &Histogram) {}

    /// One raw span event of `nanos` wall-clock nanoseconds.
    fn span(&mut self, _name: &str, _nanos: u64) {}

    /// Flushes buffered output, if any.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The default recorder: drops everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// In-memory recorder for tests and programmatic inspection.
#[derive(Debug, Clone, Default)]
pub struct MemoryRecorder {
    /// Last value seen per counter name.
    pub counters: BTreeMap<String, u64>,
    /// Last state seen per histogram name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Span events in arrival order.
    pub spans: Vec<(String, u64)>,
}

impl Recorder for MemoryRecorder {
    fn counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    fn histogram(&mut self, name: &str, hist: &Histogram) {
        self.histograms.insert(name.to_string(), hist.clone());
    }

    fn span(&mut self, name: &str, nanos: u64) {
        self.spans.push((name.to_string(), nanos));
    }
}

/// Escapes a metric name for embedding in a JSON string literal.
fn json_escape(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push(' '),
            c => out.push(c),
        }
    }
    out
}

fn join_f64(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| {
            if v.is_finite() {
                format!("{v}")
            } else {
                // JSON has no Infinity/NaN literals.
                "null".to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

fn join_u64(values: &[u64]) -> String {
    values
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// Streams events as JSON-lines records (one JSON object per line), the
/// same envelope style as the bench harness's `NORA_BENCH_JSON` files.
#[derive(Debug)]
pub struct JsonLinesRecorder<W: Write> {
    out: W,
    error: Option<io::Error>,
}

impl<W: Write> JsonLinesRecorder<W> {
    /// A recorder writing to `out`.
    pub fn new(out: W) -> Self {
        Self { out, error: None }
    }

    /// Consumes the recorder and returns the writer and the first write
    /// error, if any occurred.
    pub fn into_inner(self) -> (W, Option<io::Error>) {
        (self.out, self.error)
    }

    fn write_line(&mut self, line: String) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.out.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }
}

impl JsonLinesRecorder<io::BufWriter<std::fs::File>> {
    /// Appends to (creating if needed) the file at `path`.
    pub fn append_to(path: &std::path::Path) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self::new(io::BufWriter::new(file)))
    }
}

impl<W: Write> Recorder for JsonLinesRecorder<W> {
    fn counter(&mut self, name: &str, value: u64) {
        self.write_line(format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}\n",
            json_escape(name)
        ));
    }

    fn histogram(&mut self, name: &str, hist: &Histogram) {
        self.write_line(format!(
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\
             \"nan\":{},\"edges\":[{}],\"counts\":[{}]}}\n",
            json_escape(name),
            hist.count(),
            if hist.sum().is_finite() {
                format!("{}", hist.sum())
            } else {
                "null".to_string()
            },
            hist.nan_count(),
            join_f64(hist.edges()),
            join_u64(hist.bucket_counts()),
        ));
    }

    fn span(&mut self, name: &str, nanos: u64) {
        self.write_line(format!(
            "{{\"type\":\"span\",\"name\":\"{}\",\"ns\":{nanos}}}\n",
            json_escape(name)
        ));
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

/// Escapes a field for CSV (quotes fields containing separators/quotes).
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Streams events as CSV rows under a fixed `kind,name,value,count,sum`
/// header (histogram bucket detail is JSON-lines-only). Histogram rows
/// carry the NaN-observation count in the otherwise-unused `value` column.
#[derive(Debug)]
pub struct CsvRecorder<W: Write> {
    out: W,
    wrote_header: bool,
    error: Option<io::Error>,
}

impl<W: Write> CsvRecorder<W> {
    /// The exporter's fixed header line.
    pub const HEADER: &'static str = "kind,name,value,count,sum";

    /// A recorder writing to `out` (header emitted before the first row).
    pub fn new(out: W) -> Self {
        Self {
            out,
            wrote_header: false,
            error: None,
        }
    }

    /// Consumes the recorder and returns the writer and the first write
    /// error, if any occurred.
    pub fn into_inner(self) -> (W, Option<io::Error>) {
        (self.out, self.error)
    }

    fn write_row(&mut self, row: String) {
        if self.error.is_some() {
            return;
        }
        if !self.wrote_header {
            if let Err(e) = self.out.write_all(Self::HEADER.as_bytes()) {
                self.error = Some(e);
                return;
            }
            if let Err(e) = self.out.write_all(b"\n") {
                self.error = Some(e);
                return;
            }
            self.wrote_header = true;
        }
        if let Err(e) = self.out.write_all(row.as_bytes()) {
            self.error = Some(e);
        }
    }
}

impl<W: Write> Recorder for CsvRecorder<W> {
    fn counter(&mut self, name: &str, value: u64) {
        self.write_row(format!("counter,{},{value},,\n", csv_escape(name)));
    }

    fn histogram(&mut self, name: &str, hist: &Histogram) {
        self.write_row(format!(
            "histogram,{},{},{},{}\n",
            csv_escape(name),
            hist.nan_count(),
            hist.count(),
            hist.sum()
        ));
    }

    fn span(&mut self, name: &str, nanos: u64) {
        self.write_row(format!("span,{},{nanos},,\n", csv_escape(name)));
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_merges() {
        let mut a = Counter::new();
        a.add(3);
        let mut b = Counter::new();
        b.add(4);
        a.merge(&b);
        assert_eq!(a.get(), 7);
    }

    #[test]
    fn histogram_buckets_are_half_open_upper_inclusive() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 2.5] {
            h.observe(v);
        }
        // (-inf,1] -> {0.5, 1.0}; (1,2] -> {1.5, 2.0}; (2,inf) -> {2.5}.
        assert_eq!(h.bucket_counts(), &[2, 2, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 7.5).abs() < 1e-12);
        assert!((h.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_edges() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn nan_observations_are_counted_apart_not_bucketed() {
        // Regression: `partition_point(|&e| e < NaN)` is 0 (every NaN
        // comparison is false), so NaN used to land silently in the lowest
        // bucket and turn `sum` into NaN.
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(f64::NAN);
        h.observe(0.5);
        h.observe(f64::NAN);
        assert_eq!(h.nan_count(), 2);
        assert_eq!(h.count(), 1);
        assert_eq!(h.bucket_counts(), &[1, 0, 0]);
        assert!(h.sum().is_finite());
        assert!((h.sum() - 0.5).abs() < 1e-12);
        assert!((h.mean() - 0.5).abs() < 1e-12);

        // merge carries the NaN tally.
        let mut other = Histogram::new(&[1.0, 2.0]);
        other.observe(f64::NAN);
        h.merge(&other);
        assert_eq!(h.nan_count(), 3);
        assert_eq!(h.count(), 1);

        // Both exporters serialize the tally.
        let mut jsonl = JsonLinesRecorder::new(Vec::new());
        jsonl.histogram("h", &h);
        let (buf, _) = jsonl.into_inner();
        assert!(String::from_utf8(buf).unwrap().contains("\"nan\":3"));
        let mut csv = CsvRecorder::new(Vec::new());
        csv.histogram("h", &h);
        let (buf, _) = csv.into_inner();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().nth(1).unwrap().starts_with("histogram,h,3,1,"));
    }

    #[test]
    fn histogram_merge_is_order_independent() {
        let edges = [0.0, 1.0, 10.0];
        let obs = [0.5, -1.0, 3.0, 11.0, 0.9];
        let mut all = Histogram::new(&edges);
        for &v in &obs {
            all.observe(v);
        }
        let mut left = Histogram::new(&edges);
        let mut right = Histogram::new(&edges);
        for (i, &v) in obs.iter().enumerate() {
            if i % 2 == 0 {
                left.observe(v);
            } else {
                right.observe(v);
            }
        }
        let mut merged_lr = left.clone();
        merged_lr.merge(&right);
        let mut merged_rl = right.clone();
        merged_rl.merge(&left);
        assert_eq!(merged_lr, all);
        assert_eq!(merged_rl, all);
    }

    #[test]
    fn metrics_merge_matches_direct_accumulation() {
        let mut direct = Metrics::new();
        direct.add("a", 5);
        direct.observe("h", edges::RATE, 0.02);
        direct.observe("h", edges::RATE, 0.3);

        let mut left = Metrics::new();
        left.add("a", 2);
        left.observe("h", edges::RATE, 0.3);
        let mut right = Metrics::new();
        right.add("a", 3);
        right.observe("h", edges::RATE, 0.02);
        let mut merged = Metrics::new();
        merged.merge(&left);
        merged.merge(&right);
        assert_eq!(merged, direct);
        assert_eq!(merged.counter("a"), 5);
        assert_eq!(merged.counter("missing"), 0);
        assert_eq!(merged.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn emit_visits_names_in_sorted_order() {
        let mut m = Metrics::new();
        m.add("z.second", 1);
        m.add("a.first", 2);
        let mut rec = MemoryRecorder::default();
        m.emit(&mut rec);
        let names: Vec<&String> = rec.counters.keys().collect();
        assert_eq!(names, ["a.first", "z.second"]);
        assert_eq!(
            m.counter_snapshot(),
            vec![("a.first".to_string(), 2), ("z.second".to_string(), 1)]
        );
    }

    #[test]
    fn jsonl_recorder_writes_one_object_per_line() {
        let mut rec = JsonLinesRecorder::new(Vec::new());
        rec.counter("serve.requests", 12);
        let mut h = Histogram::new(&[1.0]);
        h.observe(0.5);
        rec.histogram("lat", &h);
        rec.span("round", 42);
        rec.flush().unwrap();
        let (buf, err) = rec.into_inner();
        assert!(err.is_none());
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"type\":\"counter\",\"name\":\"serve.requests\",\"value\":12}"
        );
        assert!(lines[1].contains("\"edges\":[1]") && lines[1].contains("\"counts\":[1,0]"));
        assert_eq!(lines[2], "{\"type\":\"span\",\"name\":\"round\",\"ns\":42}");
    }

    #[test]
    fn jsonl_recorder_escapes_hostile_names() {
        let mut rec = JsonLinesRecorder::new(Vec::new());
        rec.counter("we\"ird\\name\n", 1);
        let (buf, _) = rec.into_inner();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(
            text.trim_end(),
            "{\"type\":\"counter\",\"name\":\"we\\\"ird\\\\name \",\"value\":1}"
        );
    }

    #[test]
    fn csv_recorder_emits_header_once_and_quotes_fields() {
        let mut rec = CsvRecorder::new(Vec::new());
        rec.counter("a,b", 1);
        rec.span("s", 9);
        rec.flush().unwrap();
        let (buf, err) = rec.into_inner();
        assert!(err.is_none());
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], CsvRecorder::<Vec<u8>>::HEADER);
        assert_eq!(lines[1], "counter,\"a,b\",1,,");
        assert_eq!(lines[2], "span,s,9,,");
    }

    #[test]
    fn stopwatch_measures_nonnegative_time() {
        let sw = Stopwatch::start();
        assert!(sw.elapsed_secs() >= 0.0);
        assert!(sw.elapsed() >= Duration::ZERO);
    }

    #[test]
    fn noop_recorder_accepts_everything() {
        let mut rec = NoopRecorder;
        rec.counter("x", 1);
        rec.span("y", 2);
        let mut m = Metrics::new();
        m.add("x", 1);
        m.emit(&mut rec);
        assert!(rec.flush().is_ok());
    }
}
