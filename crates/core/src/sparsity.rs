//! Outlier-aware layer-wise N:M sparsity selection.
//!
//! The rescale planner already calibrates per-channel activation maxima
//! (`max|x_k|`, see [`calibrate`](crate::calibrate)) to fold outliers into
//! the analog scaling factors. This module reuses those same statistics to
//! decide **which layers tolerate structured pruning**: a linear whose
//! calibrated activation scales are dominated by a few outlier channels
//! concentrates its signal there — pruning it risks clipping exactly the
//! channels NORA works to protect — while a linear with a flat activation
//! profile spreads importance evenly and prunes safely.
//!
//! [`select_sparsity`] ranks layers by [`outlier_density`] (fraction of
//! calibrated channels far above the median) and greedily upgrades the most
//! prunable layers one pattern rung at a time (dense → 4:8 → 2:4 → 1:4),
//! re-validating the whole model after each tentative upgrade and freezing
//! any layer whose upgrade drops accuracy below the global budget. The
//! validation callback is pluggable so callers can score with held-out
//! episodes, the analytic noise evaluator, or both.

use std::collections::{BTreeMap, HashSet};

use crate::calibrate::Calibration;
use nora_nn::{LinearId, TransformerLm};
use nora_tensor::stats::percentile;
use nora_tensor::NmPattern;

/// Knobs for [`select_sparsity`].
#[derive(Debug, Clone)]
pub struct SparsityConfig {
    /// Global accuracy budget: a tentative upgrade is kept only if the
    /// validation score stays within `max_accuracy_drop` of the dense
    /// baseline (absolute, in the validator's units — e.g. 0.01 for "one
    /// percentage point of episode accuracy").
    pub max_accuracy_drop: f64,
    /// Pattern ladder, mildest first. Each layer climbs at most one rung
    /// per pass and freezes at the last rung that validated.
    pub ladder: Vec<NmPattern>,
    /// A calibrated channel counts as an outlier when its activation scale
    /// exceeds `outlier_threshold × median(scales)`.
    pub outlier_threshold: f32,
}

impl Default for SparsityConfig {
    fn default() -> Self {
        Self {
            max_accuracy_drop: 0.01,
            ladder: vec![NmPattern::N4M8, NmPattern::N2M4, NmPattern::N1M4],
            outlier_threshold: 4.0,
        }
    }
}

/// Fraction of calibrated channel scales exceeding `threshold × median`.
///
/// Returns 0.0 for empty or all-zero inputs (nothing stands out), so
/// uncalibrated layers rank as maximally prunable only when the caller
/// chooses to treat missing statistics that way — [`select_sparsity`]
/// instead ranks layers without calibration data last (density 1.0).
pub fn outlier_density(scales: &[f32], threshold: f32) -> f64 {
    if scales.is_empty() {
        return 0.0;
    }
    let median = percentile(scales, 50.0);
    if median <= 0.0 || median.is_nan() {
        return 0.0;
    }
    let cut = threshold * median;
    let n = scales.iter().filter(|&&s| s > cut).count();
    n as f64 / scales.len() as f64
}

/// A per-layer assignment of N:M patterns. Layers absent from the map are
/// dense. Keys are ordered (`BTreeMap`) so iteration, [`apply`] and the
/// study CSVs are deterministic.
///
/// [`apply`]: SparsityPlan::apply
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparsityPlan {
    patterns: BTreeMap<LinearId, NmPattern>,
}

impl SparsityPlan {
    /// The all-dense (no-op) plan.
    pub fn dense() -> Self {
        Self::default()
    }

    /// Assigns `pattern` to every linear in `model`.
    pub fn uniform(model: &TransformerLm, pattern: NmPattern) -> Self {
        let mut plan = Self::dense();
        for id in model.linear_ids() {
            plan.set(id, pattern);
        }
        plan
    }

    /// Sets the pattern for one layer. `Dense` removes the entry.
    pub fn set(&mut self, id: LinearId, pattern: NmPattern) {
        if pattern == NmPattern::Dense {
            self.patterns.remove(&id);
        } else {
            self.patterns.insert(id, pattern);
        }
    }

    /// Pattern assigned to `id` (`Dense` if unassigned).
    pub fn pattern_for(&self, id: LinearId) -> NmPattern {
        self.patterns.get(&id).copied().unwrap_or(NmPattern::Dense)
    }

    /// True when no layer is pruned.
    pub fn is_dense(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Iterates the non-dense assignments in `LinearId` order.
    pub fn assignments(&self) -> impl Iterator<Item = (LinearId, NmPattern)> + '_ {
        self.patterns.iter().map(|(&id, &p)| (id, p))
    }

    /// Fraction of linear-layer weights kept under this plan, weighted by
    /// parameter count across all of `model`'s analog-mappable linears.
    pub fn density(&self, model: &TransformerLm) -> f64 {
        let mut kept = 0.0f64;
        let mut total = 0.0f64;
        for id in model.linear_ids() {
            let lin = model.linear(id);
            let params = (lin.d_in() * lin.d_out()) as f64;
            let pat = self.pattern_for(id);
            // Tail rows (d_in % m) stay dense in the packed layout.
            let m = pat.m();
            let groups = lin.d_in() / m;
            let kept_rows = groups * pat.n() + lin.d_in() % m;
            kept += params * kept_rows as f64 / lin.d_in().max(1) as f64;
            total += params;
        }
        if total > 0.0 {
            kept / total
        } else {
            1.0
        }
    }

    /// Applies the plan to `model`: masks each assigned layer's weights in
    /// place and installs the packed sparse replica
    /// ([`DigitalLinear::apply_sparsity`]). When `calibration` is given,
    /// kept-row selection is importance-weighted by the calibrated
    /// per-channel activation scales, protecting outlier channels.
    ///
    /// [`DigitalLinear::apply_sparsity`]: nora_nn::DigitalLinear::apply_sparsity
    pub fn apply(&self, model: &mut TransformerLm, calibration: Option<&Calibration>) {
        for (id, pattern) in self.assignments() {
            let importance = calibration.and_then(|c| c.act_abs_max(id)).map(<[f32]>::to_vec);
            model
                .linear_mut(id)
                .apply_sparsity(pattern, importance.as_deref());
        }
    }
}

/// Greedy outlier-aware N:M pattern selection under a global accuracy
/// budget.
///
/// `validate` scores a candidate pruned model (higher is better; e.g.
/// held-out episode accuracy, or the PR-8 analytic evaluator's predicted
/// accuracy). It is first called on the unpruned `model` to establish the
/// baseline; every tentative rung upgrade re-validates and is kept only if
/// the score stays within `config.max_accuracy_drop` of that baseline.
/// Layers are visited in ascending [`outlier_density`] order (flattest
/// activation profile first); a layer that fails a rung is frozen at its
/// current pattern for the remaining rungs.
pub fn select_sparsity<F>(
    model: &TransformerLm,
    calibration: &Calibration,
    config: &SparsityConfig,
    mut validate: F,
) -> SparsityPlan
where
    F: FnMut(&TransformerLm) -> f64,
{
    let baseline = validate(model);
    let floor = baseline - config.max_accuracy_drop;

    // Rank: fewest outlier channels first; uncalibrated layers last.
    let mut order: Vec<(f64, LinearId)> = model
        .linear_ids()
        .into_iter()
        .map(|id| {
            let density = calibration
                .act_abs_max(id)
                .map(|s| outlier_density(s, config.outlier_threshold))
                .unwrap_or(1.0);
            (density, id)
        })
        .collect();
    order.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut plan = SparsityPlan::dense();
    let mut frozen: HashSet<LinearId> = HashSet::new();
    for &rung in &config.ladder {
        for &(_, id) in &order {
            if frozen.contains(&id) {
                continue;
            }
            let mut trial = plan.clone();
            trial.set(id, rung);
            let mut pruned = model.clone();
            trial.apply(&mut pruned, Some(calibration));
            if validate(&pruned) >= floor {
                plan = trial;
            } else {
                frozen.insert(id);
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrate;
    use nora_nn::zoo::{inject_outliers, ModelFamily};
    use nora_nn::ModelConfig;
    use nora_tensor::rng::Rng;

    fn outlier_model(seed: u64) -> TransformerLm {
        let mut model =
            TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(seed));
        inject_outliers(&mut model, &ModelFamily::OptLike.outlier_spec(), seed);
        model
    }

    fn sequences() -> Vec<Vec<usize>> {
        (0..4)
            .map(|i| (0..12).map(|t| 2 + (t * 3 + i) % 14).collect())
            .collect()
    }

    #[test]
    fn outlier_density_counts_heavy_channels() {
        let flat = vec![1.0f32; 64];
        assert_eq!(outlier_density(&flat, 4.0), 0.0);
        let mut spiky = vec![1.0f32; 64];
        spiky[3] = 100.0;
        spiky[40] = 50.0;
        let d = outlier_density(&spiky, 4.0);
        assert!((d - 2.0 / 64.0).abs() < 1e-12, "density {d}");
        assert_eq!(outlier_density(&[], 4.0), 0.0);
        assert_eq!(outlier_density(&[0.0; 8], 4.0), 0.0);
    }

    #[test]
    fn uniform_plan_density_matches_pattern() {
        let model = outlier_model(1);
        let plan = SparsityPlan::uniform(&model, NmPattern::N2M4);
        // tiny_for_tests dims are multiples of 4, so no dense tails.
        let d = plan.density(&model);
        assert!((d - 0.5).abs() < 1e-9, "density {d}");
        assert!(SparsityPlan::dense().is_dense());
        assert_eq!(SparsityPlan::dense().density(&model), 1.0);
    }

    #[test]
    fn apply_masks_weights_and_installs_replicas() {
        let model = outlier_model(2);
        let calib = calibrate(&model, &sequences());
        let plan = SparsityPlan::uniform(&model, NmPattern::N2M4);
        let mut pruned = model.clone();
        plan.apply(&mut pruned, Some(&calib));
        for id in pruned.linear_ids() {
            let lin = pruned.linear(id);
            assert!(lin.sparse.is_some(), "{id:?} missing replica");
            let zeros = lin
                .weight
                .value
                .as_slice()
                .iter()
                .filter(|&&w| w == 0.0)
                .count();
            // At 2:4 at least ~half the entries are masked (init has no
            // exact zeros, so every masked slot counts).
            assert!(
                zeros * 2 >= lin.weight.value.as_slice().len(),
                "{id:?} only {zeros} zeros"
            );
        }
        // The pruned forward still runs and differs from dense.
        let tokens = &sequences()[0];
        let dense_logits = model.forward(tokens);
        let pruned_logits = pruned.forward(tokens);
        assert_ne!(dense_logits.as_slice(), pruned_logits.as_slice());
    }

    #[test]
    fn selector_respects_accuracy_floor() {
        let model = outlier_model(3);
        let calib = calibrate(&model, &sequences());
        // Validator that tolerates 4:8 everywhere but nothing stronger:
        // score = density of the candidate (1.0 dense, 0.5 at uniform 2:4).
        let cfg = SparsityConfig {
            max_accuracy_drop: 0.30,
            ..SparsityConfig::default()
        };
        let plan = select_sparsity(&model, &calib, &cfg, |m| {
            let kept: usize = m
                .linear_ids()
                .into_iter()
                .map(|id| {
                    m.linear(id)
                        .weight
                        .value
                        .as_slice()
                        .iter()
                        .filter(|&&w| w != 0.0)
                        .count()
                })
                .sum();
            let total: usize = m
                .linear_ids()
                .into_iter()
                .map(|id| m.linear(id).weight.value.as_slice().len())
                .sum();
            kept as f64 / total as f64
        });
        // Global density may not drop below 1.0 - 0.30; the greedy pass
        // should therefore stop short of uniform 2:4 (density 0.5) but
        // prune at least one layer to 4:8 (first upgrade costs < 0.30).
        assert!(!plan.is_dense(), "budget allows at least one upgrade");
        let d = plan.density(&model);
        assert!(d >= 0.70 - 1e-9, "density {d} broke the floor");
        assert!(d < 1.0, "selector pruned nothing");
    }

    #[test]
    fn selector_with_zero_budget_stays_dense() {
        let model = outlier_model(4);
        let calib = calibrate(&model, &sequences());
        let cfg = SparsityConfig {
            max_accuracy_drop: 0.0,
            ..SparsityConfig::default()
        };
        // Any pruning lowers the score → everything freezes immediately.
        let plan = select_sparsity(&model, &calib, &cfg, |m| {
            let zeros: usize = m
                .linear_ids()
                .into_iter()
                .map(|id| {
                    m.linear(id)
                        .weight
                        .value
                        .as_slice()
                        .iter()
                        .filter(|&&w| w == 0.0)
                        .count()
                })
                .sum();
            -(zeros as f64)
        });
        assert!(plan.is_dense());
    }

    #[test]
    fn importance_protects_outlier_channels() {
        let model = outlier_model(5);
        let calib = calibrate(&model, &sequences());
        let plan = SparsityPlan::uniform(&model, NmPattern::N1M4);
        let mut with_imp = model.clone();
        plan.apply(&mut with_imp, Some(&calib));
        let mut without = model.clone();
        plan.apply(&mut without, None);
        // Importance weighting must change kept-row selection somewhere
        // (outlier channels are orders of magnitude above the rest).
        let differs = with_imp.linear_ids().into_iter().any(|id| {
            with_imp.linear(id).weight.value.as_slice()
                != without.linear(id).weight.value.as_slice()
        });
        assert!(differs, "importance weighting had no effect");
    }
}
