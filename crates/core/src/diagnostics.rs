//! Distribution and output-current diagnostics (paper Fig. 4 and Fig. 6).
//!
//! * [`layer_distributions`] — per-layer kurtosis of the *effective* analog
//!   inputs `x ⊘ s` and weights `w ⊙ s`; with the naive plan this is the raw
//!   model, with a NORA plan it shows the burden transfer (Fig. 6a/b).
//! * [`rescale_factors`] — the mean output rescale factor `α_i γ_j g_max`
//!   per layer; NORA shrinking it means more bitline current and a higher
//!   SNR (Fig. 6c).

use crate::plan::RescalePlan;
use nora_cim::TileConfig;
use nora_nn::{LinearId, TransformerLm};
use nora_tensor::stats;

/// Kurtosis of the effective input/weight distributions of one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerDistribution {
    /// The layer.
    pub id: LinearId,
    /// Pearson kurtosis of the effective analog input `x ⊘ s`.
    pub input_kurtosis: f64,
    /// Pearson kurtosis of the effective analog weight `w ⊙ s`.
    pub weight_kurtosis: f64,
    /// Largest absolute effective input value (outlier magnitude).
    pub input_abs_max: f32,
    /// Standard deviation of the effective input (bulk scale — the ratio
    /// `input_abs_max / input_std` is the dynamic-range burden the DAC
    /// carries).
    pub input_std: f64,
}

/// Computes effective input/weight kurtosis for every analog-mapped linear
/// under `plan`, using `sequences` as the probe stream.
///
/// # Panics
///
/// Panics if `sequences` is empty.
pub fn layer_distributions(
    model: &TransformerLm,
    sequences: &[Vec<usize>],
    plan: &RescalePlan,
) -> Vec<LayerDistribution> {
    assert!(!sequences.is_empty(), "need at least one probe sequence");
    use std::collections::HashMap;
    let mut inputs: HashMap<LinearId, Vec<f32>> = HashMap::new();
    for seq in sequences {
        model.forward_observed(seq, &mut |id, x| {
            let store = inputs.entry(id).or_default();
            match plan.smoothing_for(id) {
                Some(s) => {
                    for row in x.iter_rows() {
                        store.extend(row.iter().zip(s).map(|(&v, &sv)| v / sv));
                    }
                }
                None => store.extend_from_slice(x.as_slice()),
            }
        });
    }
    model
        .linear_ids()
        .into_iter()
        .map(|id| {
            let xs = &inputs[&id];
            let mut w = model.linear(id).weight.value.clone();
            if let Some(s) = plan.smoothing_for(id) {
                w.scale_rows(s);
            }
            let mut running = stats::RunningStats::new();
            running.extend(xs);
            LayerDistribution {
                id,
                input_kurtosis: stats::kurtosis(xs),
                weight_kurtosis: stats::kurtosis(w.as_slice()),
                input_abs_max: running.max().abs().max(running.min().abs()),
                input_std: running.std_dev(),
            }
        })
        .collect()
}

/// Runs `sequences` through an analog deployment under `plan` and reports
/// the per-layer mean rescale factor `α_i γ_j` (normalised units — the
/// paper's `α_i γ_j · g_max`).
///
/// # Panics
///
/// Panics if `sequences` is empty.
pub fn rescale_factors(
    model: &TransformerLm,
    sequences: &[Vec<usize>],
    plan: &RescalePlan,
    tile_config: TileConfig,
    seed: u64,
) -> Vec<(LinearId, f64)> {
    assert!(!sequences.is_empty(), "need at least one probe sequence");
    let mut analog = plan.deploy(model, tile_config, seed);
    for seq in sequences {
        analog.forward(seq);
    }
    analog
        .per_layer_stats()
        .into_iter()
        .map(|(id, st)| (id, st.mean_rescale()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrate;
    use crate::smoothing::SmoothingConfig;
    use nora_nn::zoo::{inject_outliers, ModelFamily};
    use nora_nn::ModelConfig;
    use nora_tensor::rng::Rng;

    fn setup() -> (TransformerLm, Vec<Vec<usize>>) {
        let mut model = TransformerLm::new(
            ModelConfig {
                d_model: 32,
                d_ff: 64,
                ..ModelConfig::tiny_for_tests()
            },
            &mut Rng::seed_from(7),
        );
        inject_outliers(&mut model, &ModelFamily::OptLike.outlier_spec(), 7);
        let seqs = (0..4)
            .map(|i| (0..14).map(|t| 2 + (t * 5 + i) % 14).collect())
            .collect();
        (model, seqs)
    }

    #[test]
    fn nora_reduces_input_kurtosis_and_raises_weight_kurtosis() {
        let (model, seqs) = setup();
        let calib = calibrate(&model, &seqs);
        let naive = layer_distributions(&model, &seqs, &RescalePlan::naive());
        let plan = RescalePlan::nora(&model, &calib, SmoothingConfig::default());
        let nora = layer_distributions(&model, &seqs, &plan);

        let mean_in = |d: &[LayerDistribution]| {
            d.iter().map(|l| l.input_kurtosis).sum::<f64>() / d.len() as f64
        };
        let mean_w = |d: &[LayerDistribution]| {
            d.iter().map(|l| l.weight_kurtosis).sum::<f64>() / d.len() as f64
        };
        assert!(
            mean_in(&nora) < mean_in(&naive) * 0.6,
            "input kurtosis {} → {}",
            mean_in(&naive),
            mean_in(&nora)
        );
        // Weight kurtosis moves only mildly (the burden lands on weights,
        // which tolerate it). Fidelity note: the paper reports a *slight
        // increase*; with function-preserving outlier injection the consumer
        // weight rows carry the exact inverse factors, so `w ⊙ s` re-balances
        // them and the kurtosis stays flat or dips instead — see
        // EXPERIMENTS.md. Either way it must stay far below the naive input
        // kurtosis: the weights never become the new bottleneck.
        assert!(
            mean_w(&nora) < mean_in(&naive),
            "weight kurtosis {} must stay below naive input kurtosis {}",
            mean_w(&nora),
            mean_in(&naive)
        );
        assert!(
            mean_w(&nora) > 0.5 * mean_w(&naive) && mean_w(&nora) < 3.0 * mean_w(&naive),
            "weight kurtosis should move mildly: {} → {}",
            mean_w(&naive),
            mean_w(&nora)
        );
    }

    #[test]
    fn nora_shrinks_rescale_factors() {
        let (model, seqs) = setup();
        let calib = calibrate(&model, &seqs);
        let tile = TileConfig::paper_default().with_tile_size(64, 64);
        let naive = rescale_factors(&model, &seqs, &RescalePlan::naive(), tile.clone(), 1);
        let plan = RescalePlan::nora(&model, &calib, SmoothingConfig::default());
        let nora = rescale_factors(&model, &seqs, &plan, tile, 1);
        let sum = |v: &[(LinearId, f64)]| v.iter().map(|(_, r)| r).sum::<f64>();
        assert!(
            sum(&nora) < sum(&naive),
            "rescale {} → {}",
            sum(&naive),
            sum(&nora)
        );
    }

    #[test]
    fn outlier_magnitude_shrinks_under_nora() {
        let (model, seqs) = setup();
        let calib = calibrate(&model, &seqs);
        let naive = layer_distributions(&model, &seqs, &RescalePlan::naive());
        let plan = RescalePlan::nora(&model, &calib, SmoothingConfig::default());
        let nora = layer_distributions(&model, &seqs, &plan);
        let max_naive: f32 = naive.iter().map(|l| l.input_abs_max).fold(0.0, f32::max);
        let max_nora: f32 = nora.iter().map(|l| l.input_abs_max).fold(0.0, f32::max);
        assert!(max_nora < max_naive, "{max_naive} → {max_nora}");
        // NORA shrinks the dynamic-range burden max/std, not just the max.
        let burden = |d: &[LayerDistribution]| {
            d.iter()
                .map(|l| l.input_abs_max as f64 / l.input_std.max(1e-9))
                .sum::<f64>()
                / d.len() as f64
        };
        assert!(
            burden(&nora) < burden(&naive),
            "dynamic-range burden {} → {}",
            burden(&naive),
            burden(&nora)
        );
    }
}
