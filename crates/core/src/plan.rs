//! Rescale plans: from calibration to analog deployment.

use crate::calibrate::Calibration;
use crate::smoothing::{smoothing_vector, SmoothingConfig};
use nora_cim::TileConfig;
use nora_nn::deploy::{AnalogTransformerLm, SmoothingMap};
use nora_nn::{LinearId, TransformerLm};
use std::collections::HashMap;

/// A complete per-layer rescale plan for deploying a model on analog tiles.
///
/// [`RescalePlan::naive`] deploys the paper's baseline (no rescaling);
/// [`RescalePlan::nora`] builds the NORA smoothing vectors from a
/// calibration. Plans with heterogeneous per-layer `λ` come from
/// [`crate::lambda_search`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RescalePlan {
    smoothing: SmoothingMap,
}

impl RescalePlan {
    /// The baseline plan: no rescaling anywhere.
    pub fn naive() -> Self {
        Self::default()
    }

    /// Builds the NORA plan: one smoothing vector per analog-mapped linear,
    /// `s_k = max|x_k|^λ / max|w_k|^{1-λ}` with the calibrated activation
    /// maxima and the model's weight-row maxima.
    ///
    /// Layers missing from the calibration deploy naively.
    pub fn nora(model: &TransformerLm, calibration: &Calibration, config: SmoothingConfig) -> Self {
        let mut lambdas = HashMap::new();
        for id in model.linear_ids() {
            lambdas.insert(id, config);
        }
        Self::nora_per_layer(model, calibration, &lambdas)
    }

    /// Like [`RescalePlan::nora`] with a per-layer smoothing config (used by
    /// the λ ablation). Layers absent from `configs` deploy naively.
    pub fn nora_per_layer(
        model: &TransformerLm,
        calibration: &Calibration,
        configs: &HashMap<LinearId, SmoothingConfig>,
    ) -> Self {
        let mut smoothing = SmoothingMap::new();
        for id in model.linear_ids() {
            let Some(cfg) = configs.get(&id) else {
                continue;
            };
            let Some(act_max) = calibration.act_abs_max(id) else {
                continue;
            };
            let weight_row_max = model.linear(id).weight.value.row_abs_max();
            smoothing.insert(id, smoothing_vector(act_max, &weight_row_max, *cfg));
        }
        Self { smoothing }
    }

    /// The per-layer smoothing vectors.
    pub fn smoothing_map(&self) -> &SmoothingMap {
        &self.smoothing
    }

    /// Whether this plan rescales anything.
    pub fn is_naive(&self) -> bool {
        self.smoothing.is_empty()
    }

    /// Smoothing vector for one layer, if planned.
    pub fn smoothing_for(&self, id: LinearId) -> Option<&[f32]> {
        self.smoothing.get(&id).map(|v| v.as_slice())
    }

    /// Deploys `model` onto analog tiles under this plan.
    pub fn deploy(
        &self,
        model: &TransformerLm,
        tile_config: TileConfig,
        seed: u64,
    ) -> AnalogTransformerLm {
        AnalogTransformerLm::new(model, tile_config, &self.smoothing, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrate;
    use nora_nn::zoo::{inject_outliers, ModelFamily};
    use nora_nn::ModelConfig;
    use nora_tensor::rng::Rng;

    fn outlier_model(seed: u64) -> TransformerLm {
        let mut model =
            TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(seed));
        inject_outliers(&mut model, &ModelFamily::OptLike.outlier_spec(), seed);
        model
    }

    fn sequences() -> Vec<Vec<usize>> {
        (0..4)
            .map(|i| (0..12).map(|t| 2 + (t * 3 + i) % 14).collect())
            .collect()
    }

    #[test]
    fn naive_plan_is_empty() {
        let plan = RescalePlan::naive();
        assert!(plan.is_naive());
        assert!(plan.smoothing_map().is_empty());
    }

    #[test]
    fn nora_plan_covers_all_layers() {
        let model = outlier_model(1);
        let calib = calibrate(&model, &sequences());
        let plan = RescalePlan::nora(&model, &calib, SmoothingConfig::default());
        assert!(!plan.is_naive());
        for id in model.linear_ids() {
            let s = plan.smoothing_for(id).unwrap();
            assert_eq!(s.len(), model.linear(id).d_in());
            assert!(s.iter().all(|&v| v > 0.0 && v.is_finite()));
        }
    }

    #[test]
    fn nora_deployment_is_exact_on_ideal_tiles() {
        let model = outlier_model(2);
        let calib = calibrate(&model, &sequences());
        let plan = RescalePlan::nora(&model, &calib, SmoothingConfig::default());
        let mut analog = plan.deploy(&model, TileConfig::ideal(), 3);
        let tokens = &sequences()[0];
        let d = model.forward(tokens);
        let a = analog.forward(tokens);
        let rel = a.mse(&d) / nora_tensor::stats::variance(d.as_slice()).max(1e-12);
        assert!(rel < 1e-7, "relative mse {rel}");
    }

    #[test]
    fn nora_tightens_activations_under_quantization() {
        // On an outlier-injected model with paper-default noise, NORA should
        // yield logits closer to digital than the naive mapping.
        let model = outlier_model(3);
        let seqs = sequences();
        let calib = calibrate(&model, &seqs);
        let tile = TileConfig::paper_default().with_tile_size(64, 64);

        let mut naive = RescalePlan::naive().deploy(&model, tile.clone(), 4);
        let plan = RescalePlan::nora(&model, &calib, SmoothingConfig::default());
        let mut nora = plan.deploy(&model, tile, 4);

        let mut mse_naive = 0.0;
        let mut mse_nora = 0.0;
        for seq in &seqs {
            let d = model.forward(seq);
            mse_naive += naive.forward(seq).mse(&d);
            mse_nora += nora.forward(seq).mse(&d);
        }
        assert!(
            mse_nora < mse_naive,
            "nora {mse_nora} should beat naive {mse_naive}"
        );
    }

    #[test]
    fn per_layer_plan_respects_partial_coverage() {
        let model = outlier_model(5);
        let calib = calibrate(&model, &sequences());
        let mut configs = HashMap::new();
        let only = model.linear_ids()[0];
        configs.insert(only, SmoothingConfig::default());
        let plan = RescalePlan::nora_per_layer(&model, &calib, &configs);
        assert!(plan.smoothing_for(only).is_some());
        assert_eq!(plan.smoothing_map().len(), 1);
    }
}
