//! The smoothing vector `s`.

/// Parameters of the smoothing computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothingConfig {
    /// Migration strength `λ ∈ [0, 1]`: 0 leaves activations untouched,
    /// 1 moves the entire burden onto the weights. The paper follows
    /// SmoothQuant's default of 0.5.
    pub lambda: f32,
    /// Floor applied to both maxima before the power computation, guarding
    /// dead channels.
    pub eps: f32,
}

impl Default for SmoothingConfig {
    fn default() -> Self {
        Self {
            lambda: 0.5,
            eps: 1e-5,
        }
    }
}

impl SmoothingConfig {
    /// Config with a specific migration strength.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is outside `[0, 1]`.
    pub fn with_lambda(lambda: f32) -> Self {
        assert!(
            (0.0..=1.0).contains(&lambda),
            "lambda must be in [0, 1], got {lambda}"
        );
        Self {
            lambda,
            ..Self::default()
        }
    }
}

/// Computes the per-input-channel smoothing vector
/// `s_k = max|x_k|^λ / max|w_k|^{1-λ}` (paper §IV).
///
/// `act_abs_max[k]` is the calibrated activation maximum of channel `k`;
/// `weight_row_abs_max[k]` is `max_j |w_kj|`, the largest weight on row `k`.
/// Channels whose activation maximum is zero (never active during
/// calibration) get `s_k = 1` — rescaling a dead channel is pointless and a
/// zero factor would be ill-defined.
///
/// The returned factors are always finite and strictly positive.
///
/// # Panics
///
/// Panics if the slices have different lengths, are empty, or `lambda` is
/// outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use nora_core::{smoothing_vector, SmoothingConfig};
/// // An outlier channel (100.0) gets a large factor: its activations shrink
/// // by ~10x while its weights grow by ~10x.
/// let s = smoothing_vector(&[100.0, 1.0], &[1.0, 1.0], SmoothingConfig::default());
/// assert!((s[0] - 10.0).abs() < 1e-4);
/// assert!((s[1] - 1.0).abs() < 1e-6);
/// ```
pub fn smoothing_vector(
    act_abs_max: &[f32],
    weight_row_abs_max: &[f32],
    config: SmoothingConfig,
) -> Vec<f32> {
    assert_eq!(
        act_abs_max.len(),
        weight_row_abs_max.len(),
        "channel count mismatch"
    );
    assert!(!act_abs_max.is_empty(), "empty channel set");
    assert!(
        (0.0..=1.0).contains(&config.lambda),
        "lambda must be in [0, 1]"
    );
    let lambda = config.lambda;
    act_abs_max
        .iter()
        .zip(weight_row_abs_max)
        .map(|(&a, &w)| {
            if a <= 0.0 {
                return 1.0;
            }
            let a = a.max(config.eps);
            let w = w.max(config.eps);
            let s = a.powf(lambda) / w.powf(1.0 - lambda);
            if s.is_finite() && s > 0.0 {
                s
            } else {
                1.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_zero_depends_only_on_weights() {
        let s = smoothing_vector(&[10.0, 100.0], &[2.0, 2.0], SmoothingConfig::with_lambda(0.0));
        // s_k = 1 / max|w_k|
        assert!((s[0] - 0.5).abs() < 1e-6);
        assert!((s[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn lambda_one_is_activation_max() {
        let s = smoothing_vector(&[10.0, 4.0], &[2.0, 8.0], SmoothingConfig::with_lambda(1.0));
        assert!((s[0] - 10.0).abs() < 1e-5);
        assert!((s[1] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn balanced_lambda_is_geometric_mean_ratio() {
        let s = smoothing_vector(&[16.0], &[4.0], SmoothingConfig::default());
        // sqrt(16)/sqrt(4) = 2
        assert!((s[0] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn outlier_channels_get_large_factors() {
        let act = [1.0f32, 1.0, 80.0, 1.0];
        let w = [0.5f32; 4];
        let s = smoothing_vector(&act, &w, SmoothingConfig::default());
        assert!(s[2] > 5.0 * s[0], "outlier factor {} bulk {}", s[2], s[0]);
    }

    #[test]
    fn dead_channels_get_identity() {
        let s = smoothing_vector(&[0.0, 5.0], &[1.0, 1.0], SmoothingConfig::default());
        assert_eq!(s[0], 1.0);
        assert!(s[1] > 1.0);
    }

    #[test]
    fn factors_always_positive_finite() {
        let act = [0.0f32, 1e-30, 1e30, 1.0];
        let w = [0.0f32, 1e30, 1e-30, 1.0];
        let s = smoothing_vector(&act, &w, SmoothingConfig::default());
        assert!(s.iter().all(|&v| v.is_finite() && v > 0.0), "{s:?}");
    }

    #[test]
    #[should_panic(expected = "lambda must be in")]
    fn bad_lambda_panics() {
        SmoothingConfig::with_lambda(1.5);
    }

    #[test]
    #[should_panic(expected = "channel count mismatch")]
    fn length_mismatch_panics() {
        smoothing_vector(&[1.0], &[1.0, 2.0], SmoothingConfig::default());
    }
}
