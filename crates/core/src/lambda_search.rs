//! Per-layer migration-strength (λ) search.
//!
//! The paper fixes λ = 0.5 (SmoothQuant's default) and lists per-layer
//! tuning as future work ("we plan to … add more ablation studies, such as
//! per-layer evaluation"). This module implements that ablation: each
//! analog-mapped linear independently grid-searches the λ that minimises its
//! *analog-vs-digital layer output MSE* on calibration data, evaluated on a
//! real noisy tile.
//!
//! The search is layer-local (inputs are taken from the FP model), so its
//! cost is linear in `layers × |grid|` instead of exponential.

use crate::calibrate::Calibration;
use crate::plan::RescalePlan;
use crate::smoothing::SmoothingConfig;
use nora_cim::{AnalogLinear, TileConfig};
use nora_nn::{LinearId, TransformerLm};
use nora_tensor::Matrix;
use std::collections::HashMap;

/// Outcome of a per-layer λ search.
#[derive(Debug, Clone)]
pub struct LambdaSearchResult {
    /// Winning λ per layer.
    pub per_layer: HashMap<LinearId, f32>,
    /// Layer-output MSE achieved by the winning λ, per layer.
    pub per_layer_mse: HashMap<LinearId, f64>,
    /// The rescale plan built from the winners.
    pub plan: RescalePlan,
}

/// Grid-searches λ per layer.
///
/// For every analog-mapped linear, its calibration-time inputs are captured
/// from the FP model, then each candidate λ is scored by programming the
/// layer on a tile with `tile_config` and measuring the output MSE against
/// the digital layer. Ties break toward the smaller λ.
///
/// # Panics
///
/// Panics if `sequences` or `lambdas` is empty, or any λ is outside
/// `[0, 1]`.
pub fn per_layer_search(
    model: &TransformerLm,
    calibration: &Calibration,
    sequences: &[Vec<usize>],
    tile_config: &TileConfig,
    lambdas: &[f32],
    seed: u64,
) -> LambdaSearchResult {
    assert!(!sequences.is_empty(), "need probe sequences");
    assert!(!lambdas.is_empty(), "need candidate lambdas");
    assert!(
        lambdas.iter().all(|l| (0.0..=1.0).contains(l)),
        "lambdas must lie in [0, 1]"
    );

    // Capture each layer's FP inputs once.
    let mut inputs: HashMap<LinearId, Vec<Matrix>> = HashMap::new();
    for seq in sequences {
        model.forward_observed(seq, &mut |id, x| {
            inputs.entry(id).or_default().push(x.clone());
        });
    }

    let mut per_layer = HashMap::new();
    let mut per_layer_mse = HashMap::new();
    let mut configs = HashMap::new();
    for id in model.linear_ids() {
        let x = Matrix::vstack(&inputs[&id]);
        let lin = model.linear(id);
        let digital = lin.forward(&x);
        let weight_row_max = lin.weight.value.row_abs_max();
        let act_max = calibration
            .act_abs_max(id)
            .expect("calibration covers the model");

        let mut best = (f64::INFINITY, lambdas[0]);
        for &lambda in lambdas {
            let cfg = SmoothingConfig::with_lambda(lambda);
            let s = crate::smoothing::smoothing_vector(act_max, &weight_row_max, cfg);
            let bias = lin.bias.value.row(0).to_vec();
            let mut analog = AnalogLinear::with_smoothing(
                lin.weight.value.clone(),
                Some(bias),
                Some(&s),
                tile_config.clone(),
                seed ^ (id.block as u64) << 8,
            );
            let mse = analog.forward(&x).mse(&digital);
            if mse < best.0 {
                best = (mse, lambda);
            }
        }
        per_layer.insert(id, best.1);
        per_layer_mse.insert(id, best.0);
        configs.insert(id, SmoothingConfig::with_lambda(best.1));
    }

    let plan = RescalePlan::nora_per_layer(model, calibration, &configs);
    LambdaSearchResult {
        per_layer,
        per_layer_mse,
        plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrate;
    use nora_nn::zoo::{inject_outliers, ModelFamily};
    use nora_nn::ModelConfig;
    use nora_tensor::rng::Rng;

    #[test]
    fn search_picks_interior_lambda_for_outlier_models() {
        let mut model = TransformerLm::new(
            ModelConfig {
                d_model: 32,
                d_ff: 64,
                ..ModelConfig::tiny_for_tests()
            },
            &mut Rng::seed_from(3),
        );
        inject_outliers(&mut model, &ModelFamily::OptLike.outlier_spec(), 3);
        let seqs: Vec<Vec<usize>> = (0..3)
            .map(|i| (0..12).map(|t| 2 + (t * 7 + i) % 14).collect())
            .collect();
        let calib = calibrate(&model, &seqs);
        let tile = TileConfig::paper_default().with_tile_size(64, 64);
        let result = per_layer_search(
            &model,
            &calib,
            &seqs,
            &tile,
            &[0.0, 0.25, 0.5, 0.75, 1.0],
            9,
        );
        assert_eq!(result.per_layer.len(), model.linear_ids().len());
        // At least one layer should prefer a non-trivial λ, and the plan
        // should cover every layer.
        assert!(result.per_layer.values().any(|&l| l > 0.0));
        assert!(!result.plan.is_naive());
        assert!(result.per_layer_mse.values().all(|&m| m.is_finite()));
    }

    #[test]
    #[should_panic(expected = "candidate lambdas")]
    fn empty_grid_panics() {
        let model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(0));
        let seqs = vec![vec![1usize, 2, 3]];
        let calib = calibrate(&model, &seqs);
        per_layer_search(
            &model,
            &calib,
            &seqs,
            &TileConfig::ideal(),
            &[],
            0,
        );
    }
}
