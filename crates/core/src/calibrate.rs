//! Offline activation calibration.
//!
//! NORA's smoothing factors need per-input-channel activation maxima
//! `max|x_k|` for every analog-mapped linear. The paper estimates them on a
//! small slice of the Pile; here any stream of token sequences works. The
//! estimate transfers across inputs because LLM outliers sit in *fixed*
//! channels ("outliers in LLM activation tend to appear in some specific
//! channels regardless of the input data", paper §IV).

use nora_nn::{LinearId, TransformerLm};
use std::collections::HashMap;

/// Per-layer, per-channel activation statistics from a calibration pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// `max|x_k|` per input channel, keyed by linear id.
    act_abs_max: HashMap<LinearId, Vec<f32>>,
    /// Number of token positions observed.
    positions: usize,
}

impl Calibration {
    /// Per-channel absolute maxima for one linear, if observed.
    pub fn act_abs_max(&self, id: LinearId) -> Option<&[f32]> {
        self.act_abs_max.get(&id).map(|v| v.as_slice())
    }

    /// Ids covered by this calibration.
    pub fn ids(&self) -> impl Iterator<Item = LinearId> + '_ {
        self.act_abs_max.keys().copied()
    }

    /// Number of token positions that contributed.
    pub fn positions(&self) -> usize {
        self.positions
    }

    /// Merges another calibration (elementwise max).
    ///
    /// # Panics
    ///
    /// Panics if the two calibrations cover different layers or channel
    /// counts.
    pub fn merge(&mut self, other: &Calibration) {
        for (id, their) in &other.act_abs_max {
            let mine = self
                .act_abs_max
                .get_mut(id)
                .expect("merging calibrations of different models");
            assert_eq!(mine.len(), their.len(), "channel count mismatch");
            for (m, &t) in mine.iter_mut().zip(their) {
                *m = m.max(t);
            }
        }
        self.positions += other.positions;
    }
}

/// Runs `sequences` through the FP model and records, for every
/// analog-mappable linear, the per-channel absolute maximum of its input.
///
/// # Panics
///
/// Panics if `sequences` is empty or contains an empty sequence.
pub fn calibrate(model: &TransformerLm, sequences: &[Vec<usize>]) -> Calibration {
    assert!(!sequences.is_empty(), "calibration needs at least one sequence");
    let mut act_abs_max: HashMap<LinearId, Vec<f32>> = HashMap::new();
    let mut positions = 0usize;
    for seq in sequences {
        assert!(!seq.is_empty(), "empty calibration sequence");
        positions += seq.len();
        model.forward_observed(seq, &mut |id, x| {
            let maxima = act_abs_max
                .entry(id)
                .or_insert_with(|| vec![0.0f32; x.cols()]);
            for row in x.iter_rows() {
                for (m, &v) in maxima.iter_mut().zip(row) {
                    *m = m.max(v.abs());
                }
            }
        });
    }
    Calibration {
        act_abs_max,
        positions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nora_nn::{LinearKind, ModelConfig};
    use nora_tensor::rng::Rng;

    fn model() -> TransformerLm {
        TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(1))
    }

    #[test]
    fn covers_every_linear_with_right_widths() {
        let m = model();
        let calib = calibrate(&m, &[vec![1, 2, 3, 4], vec![5, 6, 7]]);
        assert_eq!(calib.ids().count(), 6);
        let q = calib.act_abs_max(LinearId::new(0, LinearKind::Q)).unwrap();
        assert_eq!(q.len(), 16); // d_model
        let fc2 = calib.act_abs_max(LinearId::new(0, LinearKind::Fc2)).unwrap();
        assert_eq!(fc2.len(), 32); // d_ff
        assert_eq!(calib.positions(), 7);
    }

    #[test]
    fn maxima_are_nonnegative_and_mostly_positive() {
        let m = model();
        let calib = calibrate(&m, &[vec![1, 2, 3, 4, 5, 6, 7, 8]]);
        for id in m.linear_ids() {
            let maxima = calib.act_abs_max(id).unwrap();
            assert!(maxima.iter().all(|&v| v >= 0.0));
            let positive = maxima.iter().filter(|&&v| v > 0.0).count();
            assert!(positive > maxima.len() / 2, "{id:?}: too many zero channels");
        }
    }

    #[test]
    fn more_data_never_shrinks_maxima() {
        let m = model();
        let small = calibrate(&m, &[vec![1, 2, 3]]);
        let big = calibrate(&m, &[vec![1, 2, 3], vec![9, 8, 7, 6]]);
        for id in m.linear_ids() {
            for (s, b) in small
                .act_abs_max(id)
                .unwrap()
                .iter()
                .zip(big.act_abs_max(id).unwrap())
            {
                assert!(b >= s);
            }
        }
    }

    #[test]
    fn merge_takes_elementwise_max() {
        let m = model();
        let mut a = calibrate(&m, &[vec![1, 2, 3]]);
        let b = calibrate(&m, &[vec![9, 8, 7, 6]]);
        let combined = calibrate(&m, &[vec![1, 2, 3], vec![9, 8, 7, 6]]);
        a.merge(&b);
        for id in m.linear_ids() {
            assert_eq!(a.act_abs_max(id), combined.act_abs_max(id));
        }
        assert_eq!(a.positions(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one sequence")]
    fn empty_calibration_panics() {
        calibrate(&model(), &[]);
    }
}
