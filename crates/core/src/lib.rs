//! NORA: noise-optimized rescaling of LLM weights and activations for
//! analog compute-in-memory accelerators.
//!
//! This crate implements the paper's contribution. The observation driving
//! it: LLMs on analog CIM are **sensitive to IO non-idealities** (DAC/ADC
//! quantization, additive Gaussian noise at the converters) but **resilient
//! to tile non-idealities** (programming noise, read noise, IR-drop). NORA
//! therefore shifts the "non-ideality burden" from the dynamically streamed
//! activations to the statically mapped weights by folding a per-channel
//! smoothing component `s_k` into the analog scaling factors:
//!
//! ```text
//! s_k = max|x_k|^λ / max|w_k|^(1-λ)                        (λ ∈ [0,1])
//! weights:      w_kj → w_kj · s_k     (before programming, Eq. 6)
//! activations:  x_ik → x_ik / s_k     (before the DAC, Eq. 7)
//! output scale: α'_i γ'_j = max|x_i ⊘ s| · max|w_j ⊙ s| / g_max   (Eq. 8)
//! ```
//!
//! The activation maxima come from a small offline calibration pass
//! ([`calibrate`]) — outliers live in fixed channels, so calibration
//! transfers across inputs. The rescaling is mathematically exact (the two
//! `s` factors cancel); its effect appears only under non-idealities:
//! activation distributions tighten (less DAC clipping, finer resolution),
//! and the combined rescale factor `α'γ'` shrinks (more bitline current,
//! higher SNR against additive output noise).
//!
//! # Pipeline
//!
//! ```
//! use nora_core::{calibrate, RescalePlan, SmoothingConfig};
//! use nora_cim::TileConfig;
//! use nora_nn::zoo::{tiny_spec, ModelFamily};
//!
//! // 1. A trained, outlier-injected model (any TransformerLm works).
//! let mut zoo = tiny_spec(ModelFamily::OptLike, 1).build();
//! // 2. Calibrate per-channel activation maxima on a few sequences.
//! let seqs: Vec<Vec<usize>> = (0..4).map(|_| zoo.corpus.episode().tokens).collect();
//! let calib = calibrate(&zoo.model, &seqs);
//! // 3. Build the rescale plan and deploy onto analog tiles.
//! let plan = RescalePlan::nora(&zoo.model, &calib, SmoothingConfig::default());
//! let mut analog = plan.deploy(&zoo.model, TileConfig::paper_default(), 7);
//! let _logits = analog.forward(&seqs[0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibrate;
mod plan;
mod smoothing;
mod sparsity;

pub mod diagnostics;
pub mod lambda_search;

pub use calibrate::{calibrate, Calibration};
pub use plan::RescalePlan;
pub use smoothing::{smoothing_vector, SmoothingConfig};
pub use sparsity::{outlier_density, select_sparsity, SparsityConfig, SparsityPlan};
