//! Decode backends: how one batched round of per-sequence steps executes.

use nora_cim::DriftCompensation;
use nora_nn::deploy::AnalogTransformerLm;
use nora_nn::{KvCache, LinearId, TransformerLm};

/// Handle naming one analog tile slot for maintenance operations: the
/// owning linear layer and the slot's grid index within it.
pub type TileRef = (LinearId, usize);

/// One sequence's work item for a batched decode round.
///
/// `refill` (when present) rebases the cache before the step: the cache is
/// reset and the listed tokens are re-decoded so that `token` executes
/// against exactly that truncated context. This is how both prompt prefill
/// and sliding-window eviction are expressed — admission refills with the
/// prompt head, a full cache refills with the last `window − 1` context
/// tokens, matching [`nora_nn::generate::generate_digital_cached`].
pub struct SlotStep<'a> {
    /// Token to decode last; its logits are the step's output.
    pub token: usize,
    /// Context to re-decode from a reset cache before `token`, if any.
    pub refill: Option<&'a [usize]>,
    /// The sequence's private KV cache.
    pub cache: &'a mut KvCache,
    /// Next-token logits, filled in by the backend.
    pub logits: Vec<f32>,
    /// Decode steps executed for this item (1 + refill length), filled in
    /// by the backend; feeds per-request latency accounting.
    pub decoded: u64,
}

impl SlotStep<'_> {
    fn run_digital(&mut self, model: &TransformerLm) {
        let mut decoded = 0u64;
        if let Some(context) = self.refill {
            self.cache.reset();
            for &t in context {
                model.decode_step(t, self.cache);
                decoded += 1;
            }
        }
        self.logits = model.decode_step(self.token, self.cache);
        self.decoded = decoded + 1;
    }

    fn run_analog(&mut self, analog: &mut AnalogTransformerLm) {
        let mut decoded = 0u64;
        if let Some(context) = self.refill {
            self.cache.reset();
            for &t in context {
                analog.decode_step(t, self.cache);
                decoded += 1;
            }
        }
        self.logits = analog.decode_step(self.token, self.cache);
        self.decoded = decoded + 1;
    }
}

/// Executes batched decode rounds against a shared model deployment.
pub trait Backend {
    /// The digital architecture being served (used by the engine to size
    /// KV caches and validate tokens).
    fn model(&self) -> &TransformerLm;

    /// Runs every step of one round, filling each item's `logits` and
    /// `decoded`. Implementations must be deterministic in slot order:
    /// identical inputs produce identical outputs at any thread count.
    fn run_round(&mut self, steps: &mut [SlotStep<'_>]);

    /// Prepares the deployment for drift-aware serving: switches tile
    /// recovery to deferred mode (flags are recorded, the batch is never
    /// blocked by an inline ladder) and captures the recalibration probe
    /// references. Called once by the engine's maintenance scheduler before
    /// the first maintained round. Default no-op — digital backends have no
    /// conductances to maintain.
    fn begin_maintenance(&mut self) {}

    /// Advances conductance drift to virtual time `now_seconds`. Default
    /// no-op.
    fn drift_to(&mut self, _now_seconds: f64, _compensation: DriftCompensation) {}

    /// Runs one α̂ probe recalibration pass; returns the number of layers
    /// that produced an estimate. Default 0.
    fn recalibrate(&mut self) -> usize {
        0
    }

    /// Tile slots currently flagged Suspect, in deterministic (layer, grid)
    /// order. Default empty.
    fn suspect_tiles(&mut self) -> Vec<TileRef> {
        Vec::new()
    }

    /// Completes a background rotation of `tile` at virtual time
    /// `now_seconds`; returns `true` iff the slot is served by a healthy
    /// analog tile afterwards. Default `false`.
    fn rotate_tile(&mut self, _tile: TileRef, _now_seconds: f64) -> bool {
        false
    }
}

/// FP32 digital backend: steps are independent pure functions of the shared
/// `&TransformerLm`, so the round fans out across [`nora_parallel`] workers.
/// Results land in slot order whatever the schedule, keeping the workspace
/// bit-identity contract (same outputs at any `NORA_THREADS`).
pub struct DigitalBackend<'m> {
    model: &'m TransformerLm,
}

impl<'m> DigitalBackend<'m> {
    /// A backend serving `model`.
    pub fn new(model: &'m TransformerLm) -> Self {
        Self { model }
    }
}

impl Backend for DigitalBackend<'_> {
    fn model(&self) -> &TransformerLm {
        self.model
    }

    fn run_round(&mut self, steps: &mut [SlotStep<'_>]) {
        let model = self.model;
        nora_parallel::map_slice_mut(steps, |_, step| step.run_digital(model));
    }
}

/// Analog backend: the deployment's tile RNG streams advance as a side
/// effect of every forward, so the round runs **serially in slot order** —
/// the noise each sequence sees is then a pure function of the admission
/// order, independent of thread count. Each step is a single-token decode,
/// which rides `AnalogLinear::forward`'s batch-of-1 fast path: tiles read
/// their input band in place and reuse one scratch buffer per layer instead
/// of allocating per-tile submatrices every step, and the per-tile results
/// still combine in grid order under the bit-identity contract.
pub struct AnalogBackend<'m> {
    analog: &'m mut AnalogTransformerLm,
}

impl<'m> AnalogBackend<'m> {
    /// A backend serving the analog deployment `analog`.
    pub fn new(analog: &'m mut AnalogTransformerLm) -> Self {
        Self { analog }
    }
}

impl Backend for AnalogBackend<'_> {
    fn model(&self) -> &TransformerLm {
        self.analog.digital_model()
    }

    fn run_round(&mut self, steps: &mut [SlotStep<'_>]) {
        for step in steps {
            step.run_analog(self.analog);
        }
    }

    fn begin_maintenance(&mut self) {
        self.analog.set_deferred_recovery(true);
        self.analog.capture_probe_references();
    }

    fn drift_to(&mut self, now_seconds: f64, compensation: DriftCompensation) {
        self.analog.drift_to(now_seconds, compensation);
    }

    fn recalibrate(&mut self) -> usize {
        self.analog.recalibrate().len()
    }

    fn suspect_tiles(&mut self) -> Vec<TileRef> {
        self.analog.suspect_tiles()
    }

    fn rotate_tile(&mut self, (id, idx): TileRef, now_seconds: f64) -> bool {
        self.analog.rotate_tile(id, idx, now_seconds)
    }
}
