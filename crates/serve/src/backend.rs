//! Decode backends: how one batched round of per-sequence steps executes.

use nora_cim::{DriftCompensation, TileEffect};
use nora_nn::deploy::{AnalogTransformerLm, DecodeCtx};
use nora_nn::{KvCache, LinearId, TransformerLm};

/// Handle naming one analog tile slot for maintenance operations: the
/// owning linear layer and the slot's grid index within it.
pub type TileRef = (LinearId, usize);

/// One sequence's work item for a batched decode round.
///
/// `refill` (when present) rebases the cache before the step: the cache is
/// reset and the listed tokens are re-decoded so that `token` executes
/// against exactly that truncated context. This is how both prompt prefill
/// and sliding-window eviction are expressed — admission refills with the
/// prompt head, a full cache refills with the last `window − 1` context
/// tokens, matching [`nora_nn::generate::generate_digital_cached`].
pub struct SlotStep<'a> {
    /// Token to decode last; its logits are the step's output.
    pub token: usize,
    /// Context to re-decode from a reset cache before `token`, if any.
    pub refill: Option<&'a [usize]>,
    /// The sequence's private KV cache.
    pub cache: &'a mut KvCache,
    /// Next-token logits, filled in by the backend.
    pub logits: Vec<f32>,
    /// Decode steps executed for this item (1 + refill length), filled in
    /// by the backend; feeds per-request latency accounting.
    pub decoded: u64,
    /// Request identity component of the counter-keyed noise streams
    /// (the request's sampling seed). Ignored by the digital backend and
    /// by compat-keyed analog serving.
    pub noise_seed: u64,
    /// The request's cumulative decode-step counter before this round
    /// (prefill and rebase refills included): refill token `i` decodes at
    /// position `pos0 + i`, `token` at `pos0 + refill_len`. Ignored by the
    /// digital backend and by compat-keyed analog serving.
    pub pos0: u64,
}

impl SlotStep<'_> {
    fn run_digital(&mut self, model: &TransformerLm) {
        let mut decoded = 0u64;
        if let Some(context) = self.refill {
            self.cache.reset();
            for &t in context {
                model.decode_step(t, self.cache);
                decoded += 1;
            }
        }
        self.logits = model.decode_step(self.token, self.cache);
        self.decoded = decoded + 1;
    }

    fn run_analog(&mut self, analog: &mut AnalogTransformerLm) {
        let mut decoded = 0u64;
        if let Some(context) = self.refill {
            self.cache.reset();
            for &t in context {
                analog.decode_step(t, self.cache);
                decoded += 1;
            }
        }
        self.logits = analog.decode_step(self.token, self.cache);
        self.decoded = decoded + 1;
    }

    /// Counter-keyed variant of `run_analog` against a *shared* deployment:
    /// every decode step derives its noise streams from
    /// `(deployment, tile, noise_seed, position)`, so concurrent slots
    /// never contend on RNG state. Deferred tile effects are returned for
    /// the caller to absorb in slot order.
    fn run_analog_keyed(
        &mut self,
        analog: &AnalogTransformerLm,
        ctx: &mut DecodeCtx,
    ) -> Vec<(LinearId, TileEffect)> {
        let mut effects = Vec::new();
        let mut decoded = 0u64;
        let mut pos = self.pos0;
        if let Some(context) = self.refill {
            self.cache.reset();
            for &t in context {
                analog.decode_step_keyed(t, self.cache, self.noise_seed, pos, ctx, &mut effects);
                decoded += 1;
                pos += 1;
            }
        }
        self.logits =
            analog.decode_step_keyed(self.token, self.cache, self.noise_seed, pos, ctx, &mut effects);
        self.decoded = decoded + 1;
        effects
    }
}

/// Executes batched decode rounds against a shared model deployment.
pub trait Backend {
    /// The digital architecture being served (used by the engine to size
    /// KV caches and validate tokens).
    fn model(&self) -> &TransformerLm;

    /// Runs every step of one round, filling each item's `logits` and
    /// `decoded`. Implementations must be deterministic in slot order:
    /// identical inputs produce identical outputs at any thread count.
    fn run_round(&mut self, steps: &mut [SlotStep<'_>]);

    /// Prepares the deployment for drift-aware serving: switches tile
    /// recovery to deferred mode (flags are recorded, the batch is never
    /// blocked by an inline ladder) and captures the recalibration probe
    /// references. Called once by the engine's maintenance scheduler before
    /// the first maintained round. Default no-op — digital backends have no
    /// conductances to maintain.
    fn begin_maintenance(&mut self) {}

    /// Advances conductance drift to virtual time `now_seconds`. Default
    /// no-op.
    fn drift_to(&mut self, _now_seconds: f64, _compensation: DriftCompensation) {}

    /// Runs one α̂ probe recalibration pass; returns the number of layers
    /// that produced an estimate. Default 0.
    fn recalibrate(&mut self) -> usize {
        0
    }

    /// Tile slots currently flagged Suspect, in deterministic (layer, grid)
    /// order. Default empty.
    fn suspect_tiles(&mut self) -> Vec<TileRef> {
        Vec::new()
    }

    /// Completes a background rotation of `tile` at virtual time
    /// `now_seconds`; returns `true` iff the slot is served by a healthy
    /// analog tile afterwards. Default `false`.
    fn rotate_tile(&mut self, _tile: TileRef, _now_seconds: f64) -> bool {
        false
    }
}

/// FP32 digital backend: steps are independent pure functions of the shared
/// `&TransformerLm`, so the round fans out across [`nora_parallel`] workers.
/// Results land in slot order whatever the schedule, keeping the workspace
/// bit-identity contract (same outputs at any `NORA_THREADS`).
pub struct DigitalBackend<'m> {
    model: &'m TransformerLm,
}

impl<'m> DigitalBackend<'m> {
    /// A backend serving `model`.
    pub fn new(model: &'m TransformerLm) -> Self {
        Self { model }
    }
}

impl Backend for DigitalBackend<'_> {
    fn model(&self) -> &TransformerLm {
        self.model
    }

    fn run_round(&mut self, steps: &mut [SlotStep<'_>]) {
        let model = self.model;
        nora_parallel::map_slice_mut(steps, |_, step| step.run_digital(model));
    }
}

/// How the analog backend derives each decode step's noise streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalogKeying {
    /// Counter-keyed streams (the default): every draw sequence is a pure
    /// function of `(deployment seed, tile grid coordinates, request seed,
    /// decode position)`, so a request's noise is independent of admission
    /// order, batch composition and thread count — and the round fans out
    /// across [`nora_parallel`] workers like the digital backend.
    #[default]
    Keyed,
    /// Legacy sequential streams: tile RNG state advances as a side effect
    /// of every forward and the round runs serially in slot order. This
    /// reproduces pre-keying serving bits exactly; single-request eval
    /// paths (`generate_analog*`) always use these streams.
    Compat,
}

impl AnalogKeying {
    /// Resolves the keying mode from the `NORA_ANALOG_KEYING` environment
    /// variable: `compat` (case-insensitive) selects [`AnalogKeying::Compat`],
    /// anything else — including unset — the keyed default.
    pub fn from_env() -> Self {
        match std::env::var("NORA_ANALOG_KEYING") {
            Ok(v) if v.trim().eq_ignore_ascii_case("compat") => AnalogKeying::Compat,
            _ => AnalogKeying::Keyed,
        }
    }
}

/// Analog backend over a tile deployment.
///
/// In the default **keyed** mode ([`AnalogKeying::Keyed`]) slot steps are
/// independent pure functions of the shared `&AnalogTransformerLm` — each
/// noise draw sequence is derived from its counter key — so the round fans
/// out across [`nora_parallel`] workers with one scratch arena per slot,
/// and the deferred tile effects (statistics, ABFT flags) are absorbed
/// serially in (slot, traversal) order afterwards, keeping the nora-obs
/// transparency contract. In **compat** mode the legacy serial loop runs
/// instead: tile RNG streams advance in admission order, reproducing
/// pre-keying serving bits exactly. Each step is a single-token decode on
/// the batch-of-1 fast path either way.
pub struct AnalogBackend<'m> {
    analog: &'m mut AnalogTransformerLm,
    keying: AnalogKeying,
    /// Per-slot scratch arenas for keyed rounds, grown to the widest round
    /// seen and reused across rounds.
    arenas: Vec<DecodeCtx>,
}

impl<'m> AnalogBackend<'m> {
    /// A backend serving the analog deployment `analog`, with the keying
    /// mode resolved from the environment ([`AnalogKeying::from_env`]).
    pub fn new(analog: &'m mut AnalogTransformerLm) -> Self {
        Self::with_keying(analog, AnalogKeying::from_env())
    }

    /// A backend serving `analog` with an explicit keying mode.
    pub fn with_keying(analog: &'m mut AnalogTransformerLm, keying: AnalogKeying) -> Self {
        Self {
            analog,
            keying,
            arenas: Vec::new(),
        }
    }

    /// The active keying mode.
    pub fn keying(&self) -> AnalogKeying {
        self.keying
    }
}

impl Backend for AnalogBackend<'_> {
    fn model(&self) -> &TransformerLm {
        self.analog.digital_model()
    }

    fn run_round(&mut self, steps: &mut [SlotStep<'_>]) {
        match self.keying {
            AnalogKeying::Compat => {
                for step in steps {
                    step.run_analog(self.analog);
                }
            }
            AnalogKeying::Keyed => {
                if self.arenas.len() < steps.len() {
                    self.arenas.resize_with(steps.len(), DecodeCtx::default);
                }
                let analog = &*self.analog;
                // Fan the slots out; zipping each with its own arena keeps
                // the parallel closure free of shared mutable state.
                let mut work: Vec<(&mut SlotStep<'_>, &mut DecodeCtx)> = steps
                    .iter_mut()
                    .zip(self.arenas.iter_mut())
                    .collect();
                let effects = nora_parallel::map_slice_mut(&mut work, |_, (step, ctx)| {
                    step.run_analog_keyed(analog, ctx)
                });
                // Deferred tile effects replay serially in (slot, traversal)
                // order — deterministic at any thread count.
                for slot_effects in &effects {
                    self.analog.absorb_effects(slot_effects);
                }
            }
        }
    }

    fn begin_maintenance(&mut self) {
        self.analog.set_deferred_recovery(true);
        self.analog.capture_probe_references();
    }

    fn drift_to(&mut self, now_seconds: f64, compensation: DriftCompensation) {
        self.analog.drift_to(now_seconds, compensation);
    }

    fn recalibrate(&mut self) -> usize {
        self.analog.recalibrate().len()
    }

    fn suspect_tiles(&mut self) -> Vec<TileRef> {
        self.analog.suspect_tiles()
    }

    fn rotate_tile(&mut self, (id, idx): TileRef, now_seconds: f64) -> bool {
        self.analog.rotate_tile(id, idx, now_seconds)
    }
}
