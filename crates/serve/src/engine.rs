//! Continuous-batching generation engine over a shared deployment.

use std::time::Duration;

use nora_cim::DriftCompensation;
use nora_nn::generate::{sample_logits, Sampling};
use nora_nn::KvCache;
use nora_obs::{edges, Metrics, Recorder, Stopwatch};
use nora_tensor::rng::Rng;

use crate::backend::{Backend, SlotStep, TileRef};
use crate::queue::{AdmissionQueue, QueueConfig};

/// One generation request: a prompt to continue for `max_new_tokens`.
#[derive(Debug, Clone)]
pub struct GenRequest {
    /// Prompt token ids (must be non-empty, all within the model vocab).
    pub prompt: Vec<usize>,
    /// Number of tokens to generate.
    pub max_new_tokens: usize,
    /// Sampling strategy (default greedy).
    pub sampling: Sampling,
    /// Seed of the request's private sampler RNG, and the request-identity
    /// component of the analog backend's counter-keyed noise streams.
    /// Greedy sampling ignores it for token choice; temperature sampling
    /// with the same seed reproduces
    /// [`nora_nn::generate::generate_digital_cached`] run with
    /// `Rng::seed_from(seed)`.
    pub seed: u64,
    /// Tenant id for weighted fair admission (default 0). Tenants share
    /// the queue per their [`QueueConfig`] weights.
    pub tenant: u32,
    /// Admission priority (default 0); higher values are admitted strictly
    /// first.
    pub priority: u8,
    /// Optional deadline hint (opaque units, lower = more urgent), used as
    /// an admission tiebreak among equally scheduled requests. The engine
    /// never drops a request for missing its deadline.
    pub deadline: Option<u64>,
}

impl GenRequest {
    /// A greedy request with sampler seed 0, tenant 0 and priority 0.
    pub fn new(prompt: Vec<usize>, max_new_tokens: usize) -> Self {
        Self {
            prompt,
            max_new_tokens,
            sampling: Sampling::Greedy,
            seed: 0,
            tenant: 0,
            priority: 0,
            deadline: None,
        }
    }

    /// Sets the sampling strategy.
    pub fn with_sampling(mut self, sampling: Sampling) -> Self {
        self.sampling = sampling;
        self
    }

    /// Sets the sampler RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the tenant id for weighted fair admission.
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Sets the admission priority (higher = admitted first).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the deadline hint (admission tiebreak, lower = more urgent).
    pub fn with_deadline(mut self, deadline: u64) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Engine knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum number of concurrently decoding sequences; further requests
    /// queue FIFO until a slot frees up.
    pub max_batch: usize,
    /// Sliding-window length of each sequence's KV cache. `None` (default)
    /// uses the model's `max_seq` — the window that makes the engine match
    /// [`nora_nn::generate::generate_digital`]'s truncation exactly.
    pub window: Option<usize>,
    /// Drift-aware maintenance schedule. `None` (default) serves frozen
    /// conductances, exactly as before.
    pub maintenance: Option<MaintenanceConfig>,
    /// Admission queue discipline: depth bound (backpressure) and
    /// per-tenant fair-share weights. The default is unbounded with
    /// uniform weights — exact FIFO for single-tenant workloads.
    pub queue: QueueConfig,
}

impl EngineConfig {
    /// Config with the given batch width and the default window.
    pub fn with_max_batch(max_batch: usize) -> Self {
        Self {
            max_batch,
            window: None,
            maintenance: None,
            queue: QueueConfig::new(),
        }
    }

    /// Overrides the per-sequence KV window.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = Some(window);
        self
    }

    /// Enables the drift-aware maintenance scheduler.
    pub fn with_maintenance(mut self, maintenance: MaintenanceConfig) -> Self {
        self.maintenance = Some(maintenance);
        self
    }

    /// Bounds the admission queue to `depth` pending requests; further
    /// submissions are shed ([`RequestOutcome::Shed`]).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue = self.queue.with_depth(depth);
        self
    }

    /// Sets a tenant's fair-share admission weight (default 1.0).
    pub fn with_tenant_weight(mut self, tenant: u32, weight: f64) -> Self {
        self.queue = self.queue.with_tenant_weight(tenant, weight);
        self
    }
}

/// Virtual-time maintenance schedule for drift-aware serving.
///
/// The engine keeps a deterministic virtual clock: every model decode step
/// advances it by `secs_per_decode_step` virtual seconds, so the schedule
/// is a pure function of the served token counts — the same workload
/// produces the same drift/recalibration/rotation timeline at any
/// `NORA_THREADS`, with or without a recorder attached.
#[derive(Debug, Clone, Copy)]
pub struct MaintenanceConfig {
    /// Virtual seconds each model decode step advances the clock by.
    pub secs_per_decode_step: f64,
    /// Interval between conductance drift re-reads (virtual seconds). The
    /// physics run regardless of mitigation: disabling recalibration and
    /// rotation models an *unmitigated* engine, not a drift-free one.
    pub drift_interval: f64,
    /// Compensation mode applied at each drift re-read.
    /// [`DriftCompensation::None`] (default) leaves mitigation entirely to
    /// the online ladder — `GlobalScale` would assume oracle knowledge of
    /// the programmed state that field hardware does not have.
    pub compensation: DriftCompensation,
    /// Interval between α̂ probe recalibration passes (virtual seconds);
    /// `None` disables online recalibration.
    pub recalibration_interval: Option<f64>,
    /// Virtual latency of one background spare-tile rotation; flagged
    /// tiles keep serving (degraded) until their rotation completes. `None`
    /// disables rotation entirely.
    pub rotation_latency: Option<f64>,
}

impl MaintenanceConfig {
    /// A schedule with the given clock mapping and drift cadence, and all
    /// mitigation (recalibration, rotation) disabled.
    pub fn new(secs_per_decode_step: f64, drift_interval: f64) -> Self {
        Self {
            secs_per_decode_step,
            drift_interval,
            compensation: DriftCompensation::None,
            recalibration_interval: None,
            rotation_latency: None,
        }
    }

    /// Enables periodic α̂ probe recalibration every `interval` virtual
    /// seconds.
    pub fn with_recalibration(mut self, interval: f64) -> Self {
        self.recalibration_interval = Some(interval);
        self
    }

    /// Enables background spare-tile rotation with the given virtual
    /// completion latency.
    pub fn with_rotation(mut self, latency: f64) -> Self {
        self.rotation_latency = Some(latency);
        self
    }

    /// Overrides the compensation mode applied at drift re-reads.
    pub fn with_compensation(mut self, compensation: DriftCompensation) -> Self {
        self.compensation = compensation;
        self
    }

    fn validate(&self) {
        assert!(
            self.secs_per_decode_step > 0.0 && self.secs_per_decode_step.is_finite(),
            "secs_per_decode_step must be positive and finite"
        );
        assert!(
            self.drift_interval > 0.0 && self.drift_interval.is_finite(),
            "drift_interval must be positive and finite"
        );
        if let Some(r) = self.recalibration_interval {
            assert!(r > 0.0 && r.is_finite(), "recalibration_interval must be positive");
        }
        if let Some(l) = self.rotation_latency {
            assert!(l >= 0.0 && l.is_finite(), "rotation_latency must be non-negative");
        }
    }
}

/// Resumable state of the maintenance scheduler: the virtual clock, the
/// next due times, and the in-flight background rotations. Detach it with
/// [`GenerationEngine::take_maintenance_state`] when an engine is dropped
/// mid-horizon (e.g. between workload segments that re-borrow the analog
/// deployment) and hand it to the next engine via
/// [`GenerationEngine::resume_maintenance`] — the schedule then continues
/// as if it were one long serve.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceState {
    now: f64,
    next_drift: f64,
    next_recal: f64,
    /// In-flight background rotations as (tile, completion time), in
    /// schedule order.
    pending: Vec<(TileRef, f64)>,
    started: bool,
}

impl MaintenanceState {
    /// Virtual seconds served so far.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Background rotations currently in flight.
    pub fn pending_rotations(&self) -> usize {
        self.pending.len()
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::with_max_batch(8)
    }
}

/// Wall-clock latency breakdown of one completed request.
///
/// Telemetry only: timings vary run to run, while the token outputs stay
/// deterministic.
#[derive(Debug, Clone, Copy)]
pub struct RequestLatency {
    /// Submission → admission into a decode slot.
    pub queue_wait: Duration,
    /// Admission → final token.
    pub service: Duration,
}

impl RequestLatency {
    /// Submission → final token.
    pub fn total(&self) -> Duration {
        self.queue_wait + self.service
    }
}

/// How a request left the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RequestOutcome {
    /// Served to completion: `tokens` holds the full continuation.
    #[default]
    Completed,
    /// Rejected at submission because the admission queue was at its depth
    /// bound (backpressure). No model work was done.
    Shed,
    /// Cancelled while queued, before reaching a decode slot. No model
    /// work was done.
    Cancelled,
}

/// One retired request (completed, shed, or cancelled).
#[derive(Debug, Clone)]
pub struct GenResult {
    /// Engine-assigned request id (submission order, starting at 0).
    pub id: u64,
    /// Prompt followed by the generated continuation (just the prompt for
    /// shed/cancelled requests).
    pub tokens: Vec<usize>,
    /// Length of the prompt prefix of `tokens`.
    pub prompt_len: usize,
    /// Wall-clock latency breakdown.
    pub latency: RequestLatency,
    /// Model decode steps spent on this request (prefill + decode +
    /// sliding-window rebase work).
    pub decode_steps: u64,
    /// How the request left the engine.
    pub outcome: RequestOutcome,
}

impl GenResult {
    /// The generated continuation (without the prompt).
    pub fn generated(&self) -> &[usize] {
        &self.tokens[self.prompt_len..]
    }
}

/// Aggregate engine telemetry.
#[derive(Debug, Clone, Copy)]
pub struct EngineReport {
    /// Completed requests.
    pub requests: u64,
    /// Generated (sampled) tokens across completed and in-flight requests.
    pub generated_tokens: u64,
    /// Model decode steps executed (prefill + decode + rebase).
    pub decode_steps: u64,
    /// Batched decode rounds run.
    pub rounds: u64,
    /// Wall-clock time spent inside [`GenerationEngine::step`], including
    /// admission bookkeeping and steps where nothing decoded.
    pub busy: Duration,
    /// Wall-clock time spent in rounds that actually ran model work —
    /// the throughput denominator.
    pub service: Duration,
}

impl EngineReport {
    /// Aggregate generated tokens per second of engine *service* time.
    ///
    /// Service time only counts rounds that ran model work: idle `step`
    /// calls and the admission-queue bookkeeping of requests that never
    /// reached a slot don't dilute the rate.
    pub fn tokens_per_sec(&self) -> f64 {
        let secs = self.service.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.generated_tokens as f64 / secs
        }
    }
}

struct Pending {
    request: GenRequest,
    queued: Stopwatch,
}

struct Slot {
    id: u64,
    tokens: Vec<usize>,
    prompt_len: usize,
    remaining: usize,
    sampling: Sampling,
    rng: Rng,
    /// Request identity component of the analog backend's counter-keyed
    /// noise streams (the request's `seed`).
    noise_seed: u64,
    cache: KvCache,
    /// Next-token logits; empty until the slot's prefill round ran.
    logits: Vec<f32>,
    /// Token sampled this round, awaiting its decode.
    sampled: Option<usize>,
    /// Submission → admission (measured at admit time).
    queue_wait: Duration,
    /// Span running since admission.
    service: Stopwatch,
    /// Admission → first logits, once the prefill round completed.
    prefill: Option<Duration>,
    decode_steps: u64,
}

/// Continuous-batching engine: admits queued requests into up to
/// `max_batch` slots, runs lockstep decode rounds over a shared backend,
/// and retires requests the moment their last token is sampled.
///
/// Each [`GenerationEngine::step`] call performs one round: admit (prefill
/// new slots), sample, retire, decode. Admission runs through the
/// [`AdmissionQueue`] discipline — strict priorities, weighted per-tenant
/// fair scheduling, deadline tiebreaks, optional depth-bound shedding and
/// cancellation — which degenerates to exact FIFO for a single-tenant
/// uniform-priority workload. Token outputs are deterministic — a fixed
/// submission/cancellation sequence yields the same results at any
/// `NORA_THREADS` and any interleaving of `submit` with `step` (admission
/// order is a pure function of the submission sequence, and each slot owns
/// its cache, sampler RNG, and counter-keyed noise identity).
pub struct GenerationEngine<B: Backend> {
    backend: B,
    config: EngineConfig,
    queue: AdmissionQueue<Pending>,
    slots: Vec<Slot>,
    finished: Vec<GenResult>,
    next_id: u64,
    generated_tokens: u64,
    decode_steps: u64,
    rounds: u64,
    busy: Duration,
    service: Duration,
    completed: u64,
    metrics: Metrics,
    recorder: Option<Box<dyn Recorder>>,
    maintenance: Option<MaintenanceState>,
}

impl<B: Backend> GenerationEngine<B> {
    /// An idle engine over `backend`.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero or the configured window exceeds the
    /// model's `max_seq`.
    pub fn new(backend: B, config: EngineConfig) -> Self {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        if let Some(w) = config.window {
            let max_seq = backend.model().config().max_seq;
            assert!(
                w >= 1 && w <= max_seq,
                "window must be in 1..=max_seq ({max_seq}), got {w}"
            );
        }
        let maintenance = config.maintenance.as_ref().map(|m| {
            m.validate();
            MaintenanceState::default()
        });
        let queue = AdmissionQueue::new(config.queue.clone());
        Self {
            backend,
            config,
            queue,
            slots: Vec::new(),
            finished: Vec::new(),
            next_id: 0,
            generated_tokens: 0,
            decode_steps: 0,
            rounds: 0,
            busy: Duration::ZERO,
            service: Duration::ZERO,
            completed: 0,
            metrics: Metrics::new(),
            recorder: None,
            maintenance,
        }
    }

    /// Virtual seconds served so far under the maintenance clock (0 when
    /// maintenance is off or no round ran yet).
    pub fn virtual_now(&self) -> f64 {
        self.maintenance.as_ref().map_or(0.0, |s| s.now)
    }

    /// Detaches the maintenance scheduler state so a later engine over the
    /// same deployment can continue the virtual timeline (see
    /// [`MaintenanceState`]). Maintenance stops in this engine afterwards.
    pub fn take_maintenance_state(&mut self) -> Option<MaintenanceState> {
        self.maintenance.take()
    }

    /// Resumes a maintenance timeline detached from a previous engine.
    ///
    /// # Panics
    ///
    /// Panics if this engine's config has no maintenance schedule.
    pub fn resume_maintenance(&mut self, state: MaintenanceState) {
        assert!(
            self.config.maintenance.is_some(),
            "resume_maintenance requires a maintenance config"
        );
        self.maintenance = Some(state);
    }

    /// Attaches a streaming [`Recorder`] receiving per-request span events
    /// as requests finish (in the engine's deterministic retirement
    /// order). Token outputs are unaffected: observation draws no RNG and
    /// never reorders work — see the `nora-obs` bit-identity contract.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Detaches and returns the streaming recorder, if one was attached.
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.recorder.take()
    }

    /// The engine's aggregated metrics so far: `serve.*` counters (request
    /// and token totals — deterministic at any `NORA_THREADS`) and latency
    /// histograms (wall-clock telemetry).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Emits the aggregated metrics into `rec` (counters then histograms,
    /// in name order).
    pub fn export_metrics(&self, rec: &mut dyn Recorder) {
        self.metrics.emit(rec);
    }

    /// Enqueues `request` and returns its engine-assigned id.
    ///
    /// When the admission queue is at its configured depth bound the
    /// request is **shed** instead of queued: it retires immediately with
    /// [`RequestOutcome::Shed`] (tokens = prompt, nothing generated) and
    /// the `serve.shed` counter increments.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or contains out-of-vocab tokens.
    pub fn submit(&mut self, request: GenRequest) -> u64 {
        assert!(!request.prompt.is_empty(), "empty prompt");
        let vocab = self.backend.model().config().vocab;
        assert!(
            request.prompt.iter().all(|&t| t < vocab),
            "prompt token out of vocab ({vocab})"
        );
        let id = self.next_id;
        self.next_id += 1;
        let pending = Pending {
            request,
            queued: Stopwatch::start(),
        };
        let (tenant, priority, deadline, cost) = (
            pending.request.tenant,
            pending.request.priority,
            pending.request.deadline,
            pending.request.max_new_tokens as u64,
        );
        if let Err(shed) = self.queue.push(id, tenant, priority, deadline, cost, pending) {
            self.metrics.add("serve.shed", 1);
            self.retire_unserved(id, shed, RequestOutcome::Shed);
        }
        id
    }

    /// Cancels a queued request by id. Returns `true` if the request was
    /// still pending: it retires with [`RequestOutcome::Cancelled`] and the
    /// `serve.cancelled` counter increments. Requests already decoding (or
    /// already retired) are not interrupted and return `false`.
    pub fn cancel(&mut self, id: u64) -> bool {
        let Some(pending) = self.queue.cancel(id) else {
            return false;
        };
        self.metrics.add("serve.cancelled", 1);
        self.retire_unserved(id, pending, RequestOutcome::Cancelled);
        true
    }

    /// Retires a request that never reached a decode slot (shed at submit
    /// or cancelled while queued).
    fn retire_unserved(&mut self, id: u64, pending: Pending, outcome: RequestOutcome) {
        let prompt_len = pending.request.prompt.len();
        self.finished.push(GenResult {
            id,
            tokens: pending.request.prompt,
            prompt_len,
            latency: RequestLatency {
                queue_wait: pending.queued.elapsed(),
                service: Duration::ZERO,
            },
            decode_steps: 0,
            outcome,
        });
    }

    /// Requests admitted or queued but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.slots.len() + self.queue.len()
    }

    /// One admit → sample → retire → decode round. Returns `true` if any
    /// work remains in flight afterwards.
    pub fn step(&mut self) -> bool {
        let round_start = Stopwatch::start();
        self.admit();
        let service_start = Stopwatch::start();

        // Sample one token for every slot whose logits are ready, then
        // retire the requests that just produced their final token (their
        // slot frees up for the next round's admissions).
        for slot in &mut self.slots {
            if slot.logits.is_empty() {
                continue; // freshly admitted: prefill happens this round
            }
            let next = sample_logits(&slot.logits, slot.sampling, &mut slot.rng);
            slot.tokens.push(next);
            slot.remaining -= 1;
            slot.sampled = Some(next);
            self.generated_tokens += 1;
        }
        let mut i = 0;
        while i < self.slots.len() {
            if self.slots[i].remaining == 0 {
                let slot = self.slots.remove(i);
                self.finish(slot);
            } else {
                i += 1;
            }
        }

        // Decode round: freshly admitted slots prefill (refill from an
        // empty cache), slots whose window is full rebase onto the
        // truncated context — both through the same refill mechanism, so
        // every sequence follows generate_digital_cached exactly.
        let window = self
            .config
            .window
            .unwrap_or(self.backend.model().config().max_seq);
        let mut steps: Vec<SlotStep<'_>> = Vec::with_capacity(self.slots.len());
        for slot in &mut self.slots {
            let len = slot.tokens.len();
            let (token, refill) = if slot.logits.is_empty() {
                let start = len.saturating_sub(window);
                (slot.tokens[len - 1], Some(&slot.tokens[start..len - 1]))
            } else {
                let token = slot.sampled.take().expect("sampled token");
                let refill = if slot.cache.has_capacity() {
                    None
                } else {
                    Some(&slot.tokens[len - window..len - 1])
                };
                (token, refill)
            };
            steps.push(SlotStep {
                token,
                refill,
                cache: &mut slot.cache,
                logits: Vec::new(),
                decoded: 0,
                noise_seed: slot.noise_seed,
                // Cumulative decode steps before this round: the request's
                // position counter, independent of batch composition.
                pos0: slot.decode_steps,
            });
        }
        let ran_round = !steps.is_empty();
        if ran_round {
            self.backend.run_round(&mut steps);
            self.rounds += 1;
        }
        let outcomes: Vec<(Vec<f32>, u64)> =
            steps.into_iter().map(|s| (s.logits, s.decoded)).collect();
        let mut round_decoded = 0u64;
        for (slot, (logits, decoded)) in self.slots.iter_mut().zip(outcomes) {
            debug_assert!(!logits.is_empty(), "backend must fill logits");
            slot.logits = logits;
            slot.decode_steps += decoded;
            self.decode_steps += decoded;
            round_decoded += decoded;
            if slot.prefill.is_none() {
                // This round produced the slot's first logits.
                let prefill = slot.service.elapsed();
                slot.prefill = Some(prefill);
                self.metrics.observe(
                    "serve.prefill_secs",
                    edges::LATENCY_SECS,
                    prefill.as_secs_f64(),
                );
            }
        }
        if ran_round {
            // Maintenance runs between decode rounds on the same hardware,
            // so its cost lands inside the service window — the tokens/sec
            // curve honestly reflects recalibration and rotation overhead.
            self.run_maintenance(round_decoded);
            // Only rounds that ran model work count towards service time
            // (and so towards the tokens/sec denominator).
            let service = service_start.elapsed();
            self.service += service;
            self.metrics.add("serve.rounds", 1);
            self.metrics
                .observe("serve.round_secs", edges::LATENCY_SECS, service.as_secs_f64());
        }

        self.busy += round_start.elapsed();
        !self.slots.is_empty() || !self.queue.is_empty()
    }

    /// Runs rounds until every submitted request completed, then returns
    /// all accumulated results in submission order.
    pub fn run_to_completion(&mut self) -> Vec<GenResult> {
        while self.step() {}
        self.take_results()
    }

    /// Drains completed requests accumulated so far, in submission order.
    pub fn take_results(&mut self) -> Vec<GenResult> {
        let mut results = std::mem::take(&mut self.finished);
        results.sort_by_key(|r| r.id);
        results
    }

    /// Aggregate telemetry snapshot.
    pub fn report(&self) -> EngineReport {
        EngineReport {
            requests: self.completed,
            generated_tokens: self.generated_tokens,
            decode_steps: self.decode_steps,
            rounds: self.rounds,
            busy: self.busy,
            service: self.service,
        }
    }

    fn admit(&mut self) {
        while self.slots.len() < self.config.max_batch {
            let Some((id, pending)) = self.queue.pop() else {
                break;
            };
            let Pending { request, queued } = pending;
            let queue_wait = queued.elapsed();
            self.metrics.observe(
                &format!("serve.tenant.{}.queue_wait_secs", request.tenant),
                edges::LATENCY_SECS,
                queue_wait.as_secs_f64(),
            );
            if request.max_new_tokens == 0 {
                let prompt_len = request.prompt.len();
                let latency = RequestLatency {
                    queue_wait,
                    service: Duration::ZERO,
                };
                self.record_finish(&latency, 0, 0);
                self.finished.push(GenResult {
                    id,
                    tokens: request.prompt,
                    prompt_len,
                    latency,
                    decode_steps: 0,
                    outcome: RequestOutcome::Completed,
                });
                self.completed += 1;
                continue;
            }
            let cache = match self.config.window {
                Some(w) => KvCache::with_capacity(self.backend.model(), w),
                None => KvCache::new(self.backend.model()),
            };
            self.slots.push(Slot {
                id,
                prompt_len: request.prompt.len(),
                tokens: request.prompt,
                remaining: request.max_new_tokens,
                sampling: request.sampling,
                rng: Rng::seed_from(request.seed),
                noise_seed: request.seed,
                cache,
                logits: Vec::new(),
                sampled: None,
                queue_wait,
                service: Stopwatch::start(),
                prefill: None,
                decode_steps: 0,
            });
        }
    }

    fn finish(&mut self, slot: Slot) {
        let latency = RequestLatency {
            queue_wait: slot.queue_wait,
            service: slot.service.elapsed(),
        };
        let generated = (slot.tokens.len() - slot.prompt_len) as u64;
        self.record_finish(&latency, generated, slot.decode_steps);
        if let Some(prefill) = slot.prefill {
            let decode = latency.service.saturating_sub(prefill);
            self.metrics
                .observe("serve.decode_secs", edges::LATENCY_SECS, decode.as_secs_f64());
        }
        self.finished.push(GenResult {
            id: slot.id,
            tokens: slot.tokens,
            prompt_len: slot.prompt_len,
            latency,
            decode_steps: slot.decode_steps,
            outcome: RequestOutcome::Completed,
        });
        self.completed += 1;
    }

    /// One maintenance pass after a decode round: advance the virtual
    /// clock by the round's decode steps, then run whatever the schedule
    /// made due, in a fixed order — drift physics, rotation completions,
    /// recalibration, new rotation scheduling. Everything here is a pure
    /// function of token counts and deterministic tile state, so the
    /// timeline is bit-identical at any `NORA_THREADS` and unaffected by
    /// an attached recorder.
    fn run_maintenance(&mut self, round_decoded: u64) {
        let Some(mcfg) = self.config.maintenance else {
            return;
        };
        let Some(state) = self.maintenance.as_mut() else {
            return;
        };
        if !state.started {
            state.started = true;
            state.next_drift = mcfg.drift_interval;
            state.next_recal = mcfg.recalibration_interval.unwrap_or(f64::INFINITY);
            self.backend.begin_maintenance();
        }
        state.now += round_decoded as f64 * mcfg.secs_per_decode_step;

        // Drift physics: one catch-up re-read at the current clock when a
        // step (or several) became due — the tile state depends on absolute
        // time, not on the number of intermediate reads.
        if state.now >= state.next_drift {
            self.backend.drift_to(state.now, mcfg.compensation);
            self.metrics.add("serve.maint.drift_steps", 1);
            while state.next_drift <= state.now {
                state.next_drift += mcfg.drift_interval;
            }
        }

        // Background rotations whose virtual latency elapsed complete now,
        // in schedule order.
        let mut i = 0;
        while i < state.pending.len() {
            if state.pending[i].1 <= state.now {
                let (tile, _) = state.pending.remove(i);
                let restored = self.backend.rotate_tile(tile, state.now);
                self.metrics.add("serve.maint.rotations", 1);
                if !restored {
                    self.metrics.add("serve.maint.rotation_fallbacks", 1);
                }
            } else {
                i += 1;
            }
        }

        // Periodic α̂ probe recalibration.
        if state.now >= state.next_recal {
            let layers = self.backend.recalibrate();
            self.metrics.add("serve.maint.recalibrations", 1);
            self.metrics.add("serve.maint.recalibrated_layers", layers as u64);
            while state.next_recal <= state.now {
                state.next_recal += mcfg
                    .recalibration_interval
                    .expect("recalibration was scheduled");
            }
        }

        // Newly flagged tiles enter the rotation queue (when rotation is
        // enabled); a tile already awaiting rotation is not re-queued.
        let suspects = self.backend.suspect_tiles();
        if let Some(latency) = mcfg.rotation_latency {
            for tile in &suspects {
                if !state.pending.iter().any(|(t, _)| t == tile) {
                    state.pending.push((*tile, state.now + latency));
                    self.metrics.add("serve.maint.rotations_scheduled", 1);
                }
            }
        }

        // Degraded-mode accounting: this round was served while flagged
        // tiles were still in the batch (awaiting rotation, or unmitigated).
        if !state.pending.is_empty() || !suspects.is_empty() {
            self.metrics.add("serve.maint.degraded_rounds", 1);
        }
    }

    /// Aggregates one retirement into the engine metrics and streams the
    /// request's spans to the attached recorder, if any.
    fn record_finish(&mut self, latency: &RequestLatency, generated: u64, decode_steps: u64) {
        self.metrics.add("serve.requests", 1);
        self.metrics.add("serve.generated_tokens", generated);
        self.metrics.observe(
            "serve.queue_wait_secs",
            edges::LATENCY_SECS,
            latency.queue_wait.as_secs_f64(),
        );
        self.metrics.observe(
            "serve.service_secs",
            edges::LATENCY_SECS,
            latency.service.as_secs_f64(),
        );
        self.metrics
            .observe("serve.decode_steps", edges::COUNT, decode_steps as f64);
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.span(
                "serve.request.queue_wait",
                latency.queue_wait.as_nanos() as u64,
            );
            rec.span("serve.request.service", latency.service.as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DigitalBackend;
    use nora_nn::generate::generate_digital_cached;
    use nora_nn::{ModelConfig, TransformerLm};

    fn model() -> TransformerLm {
        TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(1))
    }

    #[test]
    fn batch_of_one_matches_generate_digital_cached() {
        let m = model();
        for sampling in [Sampling::Greedy, Sampling::Temperature(1.1)] {
            let reference = generate_digital_cached(
                &m,
                &[2, 7, 1],
                24, // runs past max_seq 16: exercises the sliding window
                sampling,
                &mut Rng::seed_from(9),
            );
            let mut engine =
                GenerationEngine::new(DigitalBackend::new(&m), EngineConfig::with_max_batch(1));
            engine.submit(
                GenRequest::new(vec![2, 7, 1], 24)
                    .with_sampling(sampling)
                    .with_seed(9),
            );
            let results = engine.run_to_completion();
            assert_eq!(results.len(), 1);
            assert_eq!(results[0].tokens, reference, "{sampling:?}");
        }
    }

    #[test]
    fn batched_requests_match_their_solo_runs() {
        // Continuous batching must not leak state between sequences: each
        // request's output equals its own single-request run.
        let m = model();
        let prompts: Vec<Vec<usize>> = (0..10)
            .map(|i| vec![(i * 3 + 1) % 16, (i * 5 + 2) % 16])
            .collect();
        let mut engine =
            GenerationEngine::new(DigitalBackend::new(&m), EngineConfig::with_max_batch(4));
        for (i, p) in prompts.iter().enumerate() {
            engine.submit(
                GenRequest::new(p.clone(), 6 + i % 5)
                    .with_sampling(Sampling::Temperature(1.4))
                    .with_seed(100 + i as u64),
            );
        }
        let results = engine.run_to_completion();
        assert_eq!(results.len(), prompts.len());
        for (i, r) in results.iter().enumerate() {
            let solo = generate_digital_cached(
                &m,
                &prompts[i],
                6 + i % 5,
                Sampling::Temperature(1.4),
                &mut Rng::seed_from(100 + i as u64),
            );
            assert_eq!(r.tokens, solo, "request {i}");
            assert_eq!(r.prompt_len, prompts[i].len());
            assert_eq!(r.generated().len(), 6 + i % 5);
        }
    }

    #[test]
    fn queueing_past_max_batch_is_fifo_and_complete() {
        let m = model();
        let mut engine =
            GenerationEngine::new(DigitalBackend::new(&m), EngineConfig::with_max_batch(2));
        let ids: Vec<u64> = (0..7)
            .map(|i| engine.submit(GenRequest::new(vec![1 + i % 4], 3)))
            .collect();
        assert_eq!(engine.in_flight(), 7);
        let results = engine.run_to_completion();
        assert_eq!(results.iter().map(|r| r.id).collect::<Vec<_>>(), ids);
        assert_eq!(engine.in_flight(), 0);
        let report = engine.report();
        assert_eq!(report.requests, 7);
        assert_eq!(report.generated_tokens, 7 * 3);
        assert!(report.decode_steps >= report.generated_tokens);
    }

    #[test]
    fn mid_flight_submission_is_served() {
        let m = model();
        let mut engine =
            GenerationEngine::new(DigitalBackend::new(&m), EngineConfig::default());
        engine.submit(GenRequest::new(vec![3, 1], 8));
        engine.step();
        engine.step();
        engine.submit(GenRequest::new(vec![5], 2));
        let results = engine.run_to_completion();
        assert_eq!(results.len(), 2);
        let solo = generate_digital_cached(&m, &[5], 2, Sampling::Greedy, &mut Rng::seed_from(0));
        assert_eq!(results[1].tokens, solo);
    }

    #[test]
    fn zero_token_request_completes_immediately() {
        let m = model();
        let mut engine =
            GenerationEngine::new(DigitalBackend::new(&m), EngineConfig::default());
        engine.submit(GenRequest::new(vec![4, 2], 0));
        let results = engine.run_to_completion();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].tokens, vec![4, 2]);
        assert!(results[0].generated().is_empty());
    }

    #[test]
    fn short_window_engine_stays_consistent() {
        // A window below max_seq still serves without panicking and stays
        // deterministic across identical runs.
        let m = model();
        let run = || {
            let mut engine = GenerationEngine::new(
                DigitalBackend::new(&m),
                EngineConfig::with_max_batch(3).with_window(5),
            );
            for i in 0..5 {
                engine.submit(GenRequest::new(vec![1 + i, 2], 12));
            }
            engine
                .run_to_completion()
                .into_iter()
                .map(|r| r.tokens)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tokens_per_sec_counts_service_time_only() {
        // max_batch = 1 with 3 queued requests: while request 0 decodes,
        // requests 1 and 2 sit in the admission queue. Their queue-wait —
        // and any idle `step` call — must not dilute the throughput
        // denominator.
        let m = model();
        let mut engine =
            GenerationEngine::new(DigitalBackend::new(&m), EngineConfig::with_max_batch(1));
        for i in 0..3 {
            engine.submit(GenRequest::new(vec![1 + i], 5));
        }
        let results = engine.run_to_completion();
        assert_eq!(results.len(), 3);
        let report = engine.report();
        assert!(report.service <= report.busy);
        assert!(report.service > Duration::ZERO);
        let tps = report.tokens_per_sec();
        assert!(tps > 0.0);
        assert!(
            (tps - report.generated_tokens as f64 / report.service.as_secs_f64()).abs() < 1e-9
        );
        // Regression: idle steps used to grow `busy` (the old denominator),
        // shrinking the reported rate with every drained-engine poll.
        for _ in 0..64 {
            engine.step();
        }
        let after = engine.report();
        assert!(after.busy > report.busy, "idle steps still accrue busy");
        assert_eq!(after.service, report.service);
        assert_eq!(after.tokens_per_sec(), tps);
    }

    /// A clonable handle to a shared in-memory recorder, so the test can
    /// inspect what the engine streamed after handing ownership over.
    #[derive(Default, Clone)]
    struct SharedRecorder(std::rc::Rc<std::cell::RefCell<nora_obs::MemoryRecorder>>);

    impl Recorder for SharedRecorder {
        fn span(&mut self, name: &str, nanos: u64) {
            self.0.borrow_mut().span(name, nanos);
        }
    }

    #[test]
    fn metrics_aggregate_requests_and_latency_spans() {
        let m = model();
        let mut engine =
            GenerationEngine::new(DigitalBackend::new(&m), EngineConfig::with_max_batch(2));
        let shared = SharedRecorder::default();
        engine.set_recorder(Box::new(shared.clone()));
        engine.submit(GenRequest::new(vec![1, 2], 4));
        engine.submit(GenRequest::new(vec![3], 6));
        engine.submit(GenRequest::new(vec![4], 0)); // completes at admit
        engine.run_to_completion();
        let metrics = engine.metrics();
        assert_eq!(metrics.counter("serve.requests"), 3);
        assert_eq!(metrics.counter("serve.generated_tokens"), 10);
        assert!(metrics.counter("serve.rounds") >= 6);
        assert_eq!(metrics.histogram("serve.queue_wait_secs").unwrap().count(), 3);
        assert_eq!(metrics.histogram("serve.service_secs").unwrap().count(), 3);
        // Only the two decoding requests have a prefill/decode split.
        assert_eq!(metrics.histogram("serve.prefill_secs").unwrap().count(), 2);
        assert_eq!(metrics.histogram("serve.decode_secs").unwrap().count(), 2);
        assert!(engine.take_recorder().is_some());
        let mem = shared.0.borrow();
        // Two spans (queue_wait + service) per finished request.
        assert_eq!(mem.spans.len(), 6);
        assert!(mem.spans.iter().any(|(n, _)| n == "serve.request.service"));
    }

    #[test]
    fn maintenance_clock_tracks_decode_steps() {
        // The virtual clock is a pure function of decode work: on a digital
        // backend (maintenance hooks are no-ops) it still advances by
        // decode_steps × secs_per_decode_step, and detach/resume continues
        // the timeline instead of restarting it.
        let m = model();
        let mcfg = MaintenanceConfig::new(250.0, 1000.0);
        let mut engine = GenerationEngine::new(
            DigitalBackend::new(&m),
            EngineConfig::with_max_batch(2).with_maintenance(mcfg),
        );
        engine.submit(GenRequest::new(vec![1, 2, 3], 6));
        engine.submit(GenRequest::new(vec![4], 9));
        engine.run_to_completion();
        let report = engine.report();
        let expected = report.decode_steps as f64 * 250.0;
        assert!((engine.virtual_now() - expected).abs() < 1e-6 * expected.max(1.0));
        let state = engine.take_maintenance_state().expect("maintenance on");
        assert_eq!(state.pending_rotations(), 0);
        let mut next = GenerationEngine::new(
            DigitalBackend::new(&m),
            EngineConfig::with_max_batch(2).with_maintenance(mcfg),
        );
        next.resume_maintenance(state);
        next.submit(GenRequest::new(vec![2], 4));
        next.run_to_completion();
        assert!(next.virtual_now() > expected);
    }

    #[test]
    #[should_panic(expected = "empty prompt")]
    fn empty_prompt_rejected_at_submit() {
        let m = model();
        let mut engine =
            GenerationEngine::new(DigitalBackend::new(&m), EngineConfig::default());
        engine.submit(GenRequest::new(vec![], 4));
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn out_of_vocab_prompt_rejected_at_submit() {
        let m = model();
        let mut engine =
            GenerationEngine::new(DigitalBackend::new(&m), EngineConfig::default());
        engine.submit(GenRequest::new(vec![999], 4));
    }
}
