//! Batched multi-sequence serving engine for NORA deployments.
//!
//! The paper's premise is efficient LLM *inference* on analog
//! compute-in-memory tiles; the standard way real inference stacks amortize
//! weight-stationary hardware is **continuous batching** across concurrent
//! requests. Analog CIM makes this especially natural: the programmed tiles
//! are shared state that every in-flight sequence reuses — one
//! [`nora_nn::deploy::AnalogTransformerLm`] (or FP32
//! [`nora_nn::TransformerLm`]) serves all sequences, while each sequence
//! keeps its own sliding-window [`nora_nn::KvCache`].
//!
//! The [`GenerationEngine`] admits concurrent [`GenRequest`]s through an
//! [`AdmissionQueue`] — strict priorities, weighted per-tenant fair
//! scheduling, deadline tiebreaks, optional depth-bound backpressure
//! (shedding) and cancellation; a single-tenant uniform-priority workload
//! degenerates to exact FIFO. It runs lockstep decode rounds over the
//! active slots (up to a configurable batch width), retires finished
//! requests mid-flight and back-fills their slots from the queue. Both
//! digital and (keyed-mode) analog decode rounds fan the per-sequence
//! steps out through [`nora_parallel`] under the workspace's bit-identity
//! contract: outputs are the same at any `NORA_THREADS` because every
//! sequence's step is independent — own cache, own sampler RNG, and (for
//! analog) counter-keyed noise streams derived from the request's own
//! identity — and results land in slot order regardless of execution
//! order. See [`AnalogKeying`] for the compat mode that reproduces the
//! legacy sequential noise streams.
//!
//! Sliding-window semantics match [`nora_nn::generate::generate_digital`]'s
//! truncation exactly: a batch of one greedy request reproduces
//! [`nora_nn::generate::generate_digital_cached`] token for token, past
//! `max_seq` included (the engine rebases a full cache the same way).
//!
//! # Example
//!
//! ```
//! use nora_nn::generate::Sampling;
//! use nora_nn::{ModelConfig, TransformerLm};
//! use nora_serve::{DigitalBackend, EngineConfig, GenRequest, GenerationEngine};
//! use nora_tensor::rng::Rng;
//!
//! let model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(0));
//! let mut engine =
//!     GenerationEngine::new(DigitalBackend::new(&model), EngineConfig::with_max_batch(4));
//! for seed in 0..6 {
//!     engine.submit(GenRequest::new(vec![1, 2, 3], 5).with_seed(seed));
//! }
//! let results = engine.run_to_completion();
//! assert_eq!(results.len(), 6);
//! assert!(results.iter().all(|r| r.tokens.len() == 8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod engine;
mod queue;

pub use backend::{AnalogBackend, AnalogKeying, Backend, DigitalBackend, SlotStep, TileRef};
pub use engine::{
    EngineConfig, EngineReport, GenRequest, GenResult, GenerationEngine, MaintenanceConfig,
    MaintenanceState, RequestLatency, RequestOutcome,
};
pub use queue::{AdmissionQueue, QueueConfig};
