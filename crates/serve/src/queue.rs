//! Admission frontend: a bounded priority/deadline queue with weighted
//! per-tenant fair scheduling.
//!
//! The queue decides *which* pending request is admitted next; the engine's
//! continuous batching decides *when* a slot frees up. Scheduling is a pure
//! function of the submission sequence — no wall clock, no thread count —
//! so admission order (and therefore every downstream token) stays
//! deterministic under the workspace bit-identity contract.
//!
//! # Scheduling discipline
//!
//! Requests are ordered by, in turn:
//!
//! 1. **Priority** (higher value first). Priorities are strict: any queued
//!    priority-2 request is admitted before every priority-1 request.
//! 2. **Weighted fair virtual finish time** within a priority class:
//!    start-time-fair queueing over virtual time, where each request costs
//!    `max_new_tokens` and a tenant with weight `w` consumes virtual time
//!    at rate `1/w`. A tenant with twice the weight gets roughly twice the
//!    admission share under contention.
//! 3. **Deadline** (earlier first, `None` last) as a tiebreak.
//! 4. **Submission id** (FIFO) as the final tiebreak.
//!
//! With a single tenant and uniform priority the virtual finish times are
//! strictly increasing in submission order, so the queue degenerates to
//! exact FIFO — the engine's historical admission order.
//!
//! # Backpressure
//!
//! An optional depth bound sheds new submissions when the queue is full
//! (the *new* request is rejected; queued work is never evicted).
//! Cancellation removes a queued request before it reaches a slot.

use std::collections::BTreeMap;

/// Admission queue knobs: depth bound and per-tenant weights.
#[derive(Debug, Clone, Default)]
pub struct QueueConfig {
    /// Maximum queued (not yet admitted) requests; a submission that would
    /// exceed this is shed. `None` (default) = unbounded.
    pub depth: Option<usize>,
    /// Per-tenant scheduling weights; tenants not listed get weight 1.
    weights: BTreeMap<u32, f64>,
}

impl QueueConfig {
    /// An unbounded queue with uniform tenant weights (exact FIFO for a
    /// single tenant).
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds the queue to `depth` pending requests (backpressure:
    /// submissions past the bound are shed).
    pub fn with_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "queue depth must be at least 1");
        self.depth = Some(depth);
        self
    }

    /// Sets `tenant`'s fair-share weight (default 1.0 for unlisted
    /// tenants). Must be positive and finite.
    pub fn with_tenant_weight(mut self, tenant: u32, weight: f64) -> Self {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "tenant weight must be positive and finite, got {weight}"
        );
        self.weights.insert(tenant, weight);
        self
    }

    /// The scheduling weight of `tenant`.
    pub fn weight(&self, tenant: u32) -> f64 {
        self.weights.get(&tenant).copied().unwrap_or(1.0)
    }
}

struct Entry<T> {
    id: u64,
    priority: u8,
    deadline: Option<u64>,
    /// Weighted fair virtual finish time within the priority class.
    vft: f64,
    item: T,
}

/// Deterministic weighted-fair admission queue (see the module docs for
/// the scheduling discipline).
pub struct AdmissionQueue<T> {
    config: QueueConfig,
    entries: Vec<Entry<T>>,
    /// Virtual clock: advances to the finish time of each admitted request.
    vnow: f64,
    /// Last assigned virtual finish time per tenant (backlogged tenants
    /// accumulate; idle tenants restart from `vnow`).
    tenant_vft: BTreeMap<u32, f64>,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue with the given config.
    pub fn new(config: QueueConfig) -> Self {
        Self {
            config,
            entries: Vec::new(),
            vnow: 0.0,
            tenant_vft: BTreeMap::new(),
        }
    }

    /// Pending requests currently queued.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Enqueues a request, or returns it as `Err` when the depth bound is
    /// reached (shed — backpressure rejects the newcomer, never evicts
    /// queued work). `cost` is the request's virtual service demand
    /// (generated tokens); it is clamped to at least 1 so zero-cost
    /// requests still advance the tenant's virtual time.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        id: u64,
        tenant: u32,
        priority: u8,
        deadline: Option<u64>,
        cost: u64,
        item: T,
    ) -> Result<(), T> {
        if let Some(depth) = self.config.depth {
            if self.entries.len() >= depth {
                return Err(item);
            }
        }
        let weight = self.config.weight(tenant);
        let start = self
            .tenant_vft
            .get(&tenant)
            .copied()
            .unwrap_or(self.vnow)
            .max(self.vnow);
        let vft = start + cost.max(1) as f64 / weight;
        self.tenant_vft.insert(tenant, vft);
        self.entries.push(Entry {
            id,
            priority,
            deadline,
            vft,
            item,
        });
        Ok(())
    }

    /// Admits the next request per the scheduling discipline, returning its
    /// id and payload.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let best = self
            .entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                b.priority
                    .cmp(&a.priority) // higher priority first
                    .then(a.vft.total_cmp(&b.vft))
                    .then_with(|| match (a.deadline, b.deadline) {
                        (Some(x), Some(y)) => x.cmp(&y),
                        (Some(_), None) => std::cmp::Ordering::Less,
                        (None, Some(_)) => std::cmp::Ordering::Greater,
                        (None, None) => std::cmp::Ordering::Equal,
                    })
                    .then(a.id.cmp(&b.id))
            })
            .map(|(i, _)| i)?;
        let entry = self.entries.remove(best);
        self.vnow = self.vnow.max(entry.vft);
        Some((entry.id, entry.item))
    }

    /// Removes a queued request by id (cancellation), returning its payload
    /// if it was still pending. The tenant's consumed virtual time is not
    /// refunded — cancellation frees the slot, not the fair-share budget.
    pub fn cancel(&mut self, id: u64) -> Option<T> {
        let idx = self.entries.iter().position(|e| e.id == id)?;
        Some(self.entries.remove(idx).item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut AdmissionQueue<&'static str>) -> Vec<u64> {
        std::iter::from_fn(|| q.pop()).map(|(id, _)| id).collect()
    }

    #[test]
    fn single_tenant_uniform_priority_is_fifo() {
        let mut q = AdmissionQueue::new(QueueConfig::new());
        for id in 0..6 {
            // Varying costs must not reorder a single backlogged tenant.
            q.push(id, 0, 0, None, 1 + (id % 3) * 7, "r").unwrap();
        }
        assert_eq!(drain(&mut q), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn higher_priority_jumps_the_queue() {
        let mut q = AdmissionQueue::new(QueueConfig::new());
        q.push(0, 0, 0, None, 4, "lo").unwrap();
        q.push(1, 0, 2, None, 4, "hi").unwrap();
        q.push(2, 0, 1, None, 4, "mid").unwrap();
        assert_eq!(drain(&mut q), vec![1, 2, 0]);
    }

    #[test]
    fn weighted_tenants_share_by_weight() {
        // Tenant 1 (weight 2) finishes two requests per tenant 0 request.
        let cfg = QueueConfig::new().with_tenant_weight(1, 2.0);
        let mut q = AdmissionQueue::new(cfg);
        for id in 0..3 {
            q.push(id, 0, 0, None, 4, "t0").unwrap();
        }
        for id in 3..9 {
            q.push(id, 1, 0, None, 4, "t1").unwrap();
        }
        let order = drain(&mut q);
        // First three admissions: two of tenant 1 for one of tenant 0.
        let t1_in_first_3 = order[..3].iter().filter(|&&id| id >= 3).count();
        assert_eq!(t1_in_first_3, 2, "order: {order:?}");
        assert_eq!(order.len(), 9);
    }

    #[test]
    fn deadline_breaks_vft_ties() {
        let cfg = QueueConfig::new()
            .with_tenant_weight(1, 1.0)
            .with_tenant_weight(2, 1.0);
        let mut q = AdmissionQueue::new(cfg);
        // Different tenants, identical cost ⇒ identical vft.
        q.push(0, 1, 0, None, 5, "no-deadline").unwrap();
        q.push(1, 2, 0, Some(100), 5, "later").unwrap();
        q.push(2, 3, 0, Some(10), 5, "urgent").unwrap();
        assert_eq!(drain(&mut q), vec![2, 1, 0]);
    }

    #[test]
    fn depth_bound_sheds_newcomers_only() {
        let mut q = AdmissionQueue::new(QueueConfig::new().with_depth(2));
        q.push(0, 0, 0, None, 1, "a").unwrap();
        q.push(1, 0, 0, None, 1, "b").unwrap();
        assert_eq!(q.push(2, 0, 9, None, 1, "shed"), Err("shed"));
        assert_eq!(q.len(), 2);
        assert_eq!(drain(&mut q), vec![0, 1]);
    }

    #[test]
    fn cancel_removes_pending_request() {
        let mut q = AdmissionQueue::new(QueueConfig::new());
        q.push(0, 0, 0, None, 1, "a").unwrap();
        q.push(1, 0, 0, None, 1, "b").unwrap();
        assert_eq!(q.cancel(1), Some("b"));
        assert_eq!(q.cancel(1), None);
        assert_eq!(drain(&mut q), vec![0]);
    }

    #[test]
    fn idle_tenant_restarts_from_virtual_now() {
        // A tenant that was idle while others ran must not bank its unused
        // virtual time into a monopolizing burst.
        let cfg = QueueConfig::new();
        let mut q = AdmissionQueue::new(cfg);
        q.push(0, 0, 0, None, 100, "t0-big").unwrap();
        q.pop().unwrap(); // vnow advances to 100
        q.push(1, 1, 0, None, 1, "t1-small").unwrap();
        q.push(2, 0, 0, None, 1, "t0-small").unwrap();
        // Tenant 1 starts at vnow=100 like tenant 0, not at 0.
        let order = drain(&mut q);
        assert_eq!(order, vec![1, 2]); // same vft ⇒ FIFO by id
    }
}
