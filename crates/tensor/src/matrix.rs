//! Row-major dense `f32` matrices.

use crate::rng::Rng;
use crate::{Result, ShapeError};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f32` matrix.
///
/// This is the lingua franca of the workspace: activations are `(batch ×
/// features)` matrices, weights are `(in_features × out_features)` matrices
/// (so a linear layer computes `X · W`), and analog tiles hold `(rows × cols)`
/// conductance blocks.
///
/// Operations that combine two matrices come in two flavours: a panicking
/// method (`matmul`) for the common statically-shaped path, and a fallible
/// `try_` variant returning [`ShapeError`] for dynamically-shaped callers.
///
/// # Example
///
/// ```
/// use nora_tensor::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let x = a.matvec(&[1.0, 1.0]);
/// assert_eq!(x, vec![3.0, 7.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows in from_rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix whose entries are drawn i.i.d. from `N(mean, std²)`.
    pub fn random_normal(rows: usize, cols: usize, mean: f32, std: f32, rng: &mut Rng) -> Self {
        let mut m = Self::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.normal(mean, std);
        }
        m
    }

    /// Creates a matrix whose entries are drawn i.i.d. from `U[lo, hi)`.
    pub fn random_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let mut m = Self::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.uniform(lo, hi);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col {c} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.try_matmul(rhs).expect("matmul shape mismatch")
    }

    /// Fallible matrix product.
    ///
    /// Output rows are independent, so for products above a work threshold
    /// they are computed in parallel row chunks (see [`nora_parallel`]).
    /// Each output element keeps a single `k`-ascending accumulation chain,
    /// so the result is bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the inner dimensions disagree.
    pub fn try_matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(ShapeError::new("matmul", self.shape(), rhs.shape()));
        }
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        // Shared work-threshold gate (`MIN_PARALLEL_WORK`): below ~1 Mflop
        // the pool latch handshake costs more than it saves, so small
        // matmuls stay on the exact serial loop.
        let threads = nora_parallel::threads_for_work(m, (k * n) as u64);
        if threads > 1 && m > 1 {
            // Small chunks (≈4 per thread) so a slow chunk can't stall the
            // section; each chunk owns whole output rows, so writes are
            // disjoint and per-element FP order is unchanged.
            let rows_per_chunk = m.div_ceil(threads * 4).max(1);
            nora_parallel::for_each_chunk_mut(&mut out.data, rows_per_chunk * n, |ci, chunk| {
                for (dr, out_row) in chunk.chunks_mut(n).enumerate() {
                    let i = ci * rows_per_chunk + dr;
                    row_times_matrix(&self.data[i * k..(i + 1) * k], &rhs.data, n, out_row);
                }
            });
        } else {
            for i in 0..m {
                row_times_matrix(
                    &self.data[i * k..(i + 1) * k],
                    &rhs.data,
                    n,
                    &mut out.data[i * n..(i + 1) * n],
                );
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(
            x.len(),
            self.cols,
            "matvec: vector length {} vs cols {}",
            x.len(),
            self.cols
        );
        self.iter_rows()
            .map(|row| row.iter().zip(x).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Vector–matrix product `x · self` (row vector times matrix).
    ///
    /// This is the activation-side orientation used by linear layers:
    /// `y = x · W` with `x` of length `rows` and result of length `cols`.
    /// Dense kernel — every `x[k]` is multiplied through, with no
    /// zero-skip branch; for genuinely sparse inputs (e.g. bit-serial
    /// planes) use [`Matrix::vecmat_sparse`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn vecmat(&self, x: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.vecmat_into(x, &mut out);
        out
    }

    /// [`Matrix::vecmat`] writing into a caller-owned buffer, so hot loops
    /// can reuse the allocation. The buffer is cleared and resized to
    /// `cols`; its prior contents do not affect the result.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn vecmat_into(&self, x: &[f32], out: &mut Vec<f32>) {
        assert_eq!(
            x.len(),
            self.rows,
            "vecmat: vector length {} vs rows {}",
            x.len(),
            self.rows
        );
        out.clear();
        out.resize(self.cols, 0.0);
        row_times_matrix(x, &self.data, self.cols, out);
    }

    /// Sparse-aware variant of [`Matrix::vecmat`]: rows whose coefficient
    /// is exactly `0.0` are skipped entirely. Profitable only when a large
    /// fraction of `x` is exact zeros (e.g. bit-plane slices in bit-serial
    /// conversion); on dense activations the branch costs more than it
    /// saves.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn vecmat_sparse(&self, x: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.vecmat_sparse_into(x, &mut out);
        out
    }

    /// [`Matrix::vecmat_sparse`] writing into a caller-owned buffer. The
    /// buffer is cleared and resized to `cols` before accumulation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn vecmat_sparse_into(&self, x: &[f32], out: &mut Vec<f32>) {
        assert_eq!(
            x.len(),
            self.rows,
            "vecmat: vector length {} vs rows {}",
            x.len(),
            self.rows
        );
        out.clear();
        out.resize(self.cols, 0.0);
        for (k, &a) in x.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let row = &self.data[k * self.cols..(k + 1) * self.cols];
            for (o, &b) in out.iter_mut().zip(row) {
                *o += a * b;
            }
        }
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.try_add(rhs).expect("add shape mismatch")
    }

    /// Fallible elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn try_add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(ShapeError::new("add", self.shape(), rhs.shape()));
        }
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(&rhs.data) {
            *o += b;
        }
        Ok(out)
    }

    /// Elementwise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(&rhs.data) {
            *o -= b;
        }
        out
    }

    /// In-place elementwise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (o, &b) in self.data.iter_mut().zip(&rhs.data) {
            *o += b;
        }
    }

    /// Returns the matrix scaled by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        let mut out = self.clone();
        out.scale_assign(s);
        out
    }

    /// Scales all entries by `s` in place.
    pub fn scale_assign(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Matrix {
        let mut out = self.clone();
        for v in &mut out.data {
            *v = f(*v);
        }
        out
    }

    /// Applies `f` to every entry in place.
    pub fn map_assign(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Multiplies row `r` by `s` in place.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn scale_row(&mut self, r: usize, s: f32) {
        for v in self.row_mut(r) {
            *v *= s;
        }
    }

    /// Multiplies column `c` by `s` in place.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn scale_col(&mut self, c: usize, s: f32) {
        assert!(c < self.cols, "col {c} out of bounds ({})", self.cols);
        for r in 0..self.rows {
            self.data[r * self.cols + c] *= s;
        }
    }

    /// Multiplies each row `k` by `s[k]` (diagonal left-multiplication).
    ///
    /// # Panics
    ///
    /// Panics if `s.len() != rows`.
    pub fn scale_rows(&mut self, s: &[f32]) {
        assert_eq!(s.len(), self.rows, "scale_rows length mismatch");
        for (r, &f) in s.iter().enumerate() {
            self.scale_row(r, f);
        }
    }

    /// Multiplies each column `k` by `s[k]` (diagonal right-multiplication).
    ///
    /// # Panics
    ///
    /// Panics if `s.len() != cols`.
    pub fn scale_cols(&mut self, s: &[f32]) {
        assert_eq!(s.len(), self.cols, "scale_cols length mismatch");
        for row in self.data.chunks_exact_mut(self.cols) {
            for (v, &f) in row.iter_mut().zip(s) {
                *v *= f;
            }
        }
    }

    /// Maximum absolute value over the whole matrix (0 for empty).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Per-row maximum absolute values (length `rows`).
    pub fn row_abs_max(&self) -> Vec<f32> {
        self.iter_rows()
            .map(|row| row.iter().fold(0.0f32, |m, &v| m.max(v.abs())))
            .collect()
    }

    /// Per-column maximum absolute values (length `cols`).
    pub fn col_abs_max(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for row in self.iter_rows() {
            for (m, &v) in out.iter_mut().zip(row) {
                *m = m.max(v.abs());
            }
        }
        out
    }

    /// Extracts the sub-matrix with rows `r0..r1` and columns `c0..c1`.
    ///
    /// # Panics
    ///
    /// Panics if the ranges are out of bounds or inverted.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "bad row range {r0}..{r1}");
        assert!(c0 <= c1 && c1 <= self.cols, "bad col range {c0}..{c1}");
        let mut out = Matrix::zeros(r1 - r0, c1 - c0);
        for (ro, r) in (r0..r1).enumerate() {
            out.row_mut(ro).copy_from_slice(&self.row(r)[c0..c1]);
        }
        out
    }

    /// Writes `block` into this matrix with its top-left corner at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit.
    pub fn set_submatrix(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "block {}x{} at ({r0},{c0}) exceeds {}x{}",
            block.rows,
            block.cols,
            self.rows,
            self.cols
        );
        for r in 0..block.rows {
            let dst = &mut self.data[(r0 + r) * self.cols + c0..][..block.cols];
            dst.copy_from_slice(block.row(r));
        }
    }

    /// Stacks matrices vertically (same column count).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the column counts disagree.
    pub fn vstack(parts: &[Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vstack of nothing");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut r = 0;
        for p in parts {
            assert_eq!(p.cols, cols, "vstack column mismatch");
            out.set_submatrix(r, 0, p);
            r += p.rows;
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Mean squared error against another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mse(&self, rhs: &Matrix) -> f64 {
        assert_eq!(self.shape(), rhs.shape(), "mse shape mismatch");
        crate::stats::mse(&self.data, &rhs.data)
    }
}

/// Register-tile width of the GEMM/GEMV kernel (f32 lanes kept live across
/// the `k` loop).
const GEMM_JT: usize = 16;

/// Wide-tile width: two [`GEMM_JT`] accumulator blocks advanced together so
/// a single `a_row[k]` load feeds 32 output lanes per `k` step.
const GEMM_JW: usize = 2 * GEMM_JT;

/// Shared row kernel: `out_row = a_row · b`, where `b` is row-major
/// `a_row.len() × n` and `out_row` has length `n`.
///
/// Columns are processed in register tiles of [`GEMM_JW`] accumulators
/// (two [`GEMM_JT`] blocks, falling back to one block and then a masked
/// tail at the right edge) so the compiler can keep the partial sums in
/// vector registers across the whole `k` loop — one load of `a_row[k]`
/// feeds every live lane. Each output element is produced by a single
/// `k`-ascending chain of `acc += a * b` updates — the same floating-point
/// evaluation order as the scalar two-loop form, so tiling does not change
/// results bitwise.
fn row_times_matrix(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
    debug_assert_eq!(out_row.len(), n);
    debug_assert_eq!(b.len(), a_row.len() * n);
    let mut j0 = 0;
    while j0 + GEMM_JW <= n {
        let mut lo = [0.0f32; GEMM_JT];
        let mut hi = [0.0f32; GEMM_JT];
        for (k, &a) in a_row.iter().enumerate() {
            let row = k * n + j0;
            let blk0: &[f32; GEMM_JT] = b[row..row + GEMM_JT]
                .try_into()
                .expect("block width is GEMM_JT");
            let blk1: &[f32; GEMM_JT] = b[row + GEMM_JT..row + GEMM_JW]
                .try_into()
                .expect("block width is GEMM_JT");
            for (o, &v) in lo.iter_mut().zip(blk0) {
                *o += a * v;
            }
            for (o, &v) in hi.iter_mut().zip(blk1) {
                *o += a * v;
            }
        }
        out_row[j0..j0 + GEMM_JT].copy_from_slice(&lo);
        out_row[j0 + GEMM_JT..j0 + GEMM_JW].copy_from_slice(&hi);
        j0 += GEMM_JW;
    }
    while j0 + GEMM_JT <= n {
        let mut acc = [0.0f32; GEMM_JT];
        for (k, &a) in a_row.iter().enumerate() {
            let blk: &[f32; GEMM_JT] = b[k * n + j0..k * n + j0 + GEMM_JT]
                .try_into()
                .expect("block width is GEMM_JT");
            for (o, &v) in acc.iter_mut().zip(blk) {
                *o += a * v;
            }
        }
        out_row[j0..j0 + GEMM_JT].copy_from_slice(&acc);
        j0 += GEMM_JT;
    }
    if j0 < n {
        let rem = n - j0;
        let mut acc = [0.0f32; GEMM_JT];
        for (k, &a) in a_row.iter().enumerate() {
            let tail = &b[k * n + j0..k * n + n];
            for (o, &v) in acc[..rem].iter_mut().zip(tail) {
                *o += a * v;
            }
        }
        out_row[j0..].copy_from_slice(&acc[..rem]);
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 6;
        for (i, row) in self.iter_rows().enumerate() {
            if i >= max_rows {
                writeln!(f, "  … ({} more rows)", self.rows - max_rows)?;
                break;
            }
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:.4}")).collect();
            let ellipsis = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn constructors_and_shape() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let f = Matrix::full(2, 2, 7.0);
        assert!(f.as_slice().iter().all(|&v| v == 7.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_vec_round_trips() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_wrong_len_panics() {
        Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = sample();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[4.0, 5.0, 10.0, 11.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = sample();
        let c = a.matmul(&Matrix::identity(3));
        assert_eq!(a, c);
    }

    #[test]
    fn try_matmul_shape_error() {
        let a = sample();
        let err = a.try_matmul(&sample()).unwrap_err();
        assert_eq!(err.op(), "matmul");
    }

    #[test]
    fn matvec_and_vecmat_agree_with_matmul() {
        let a = sample();
        let x = [1.0f32, -1.0, 2.0];
        let y = a.matvec(&x);
        assert_eq!(y, vec![5.0, 11.0]);
        let x2 = [1.0f32, -1.0];
        let y2 = a.vecmat(&x2);
        assert_eq!(y2, vec![-3.0, -3.0, -3.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = sample();
        let s = a.add(&a).sub(&a);
        assert_eq!(s, a);
        assert_eq!(a.scale(2.0), a.add(&a));
    }

    #[test]
    fn row_col_scaling() {
        let mut a = sample();
        a.scale_rows(&[2.0, 3.0]);
        assert_eq!(a.row(0), &[2.0, 4.0, 6.0]);
        assert_eq!(a.row(1), &[12.0, 15.0, 18.0]);
        let mut b = sample();
        b.scale_cols(&[1.0, 0.0, -1.0]);
        assert_eq!(b.row(0), &[1.0, 0.0, -3.0]);
    }

    #[test]
    fn diagonal_scaling_cancels_in_product() {
        // (X diag(1/s)) · (diag(s) W) == X · W  — the NORA exactness identity.
        let mut rng = Rng::seed_from(3);
        let x = Matrix::random_normal(4, 6, 0.0, 1.0, &mut rng);
        let w = Matrix::random_normal(6, 5, 0.0, 1.0, &mut rng);
        let s: Vec<f32> = (0..6).map(|i| 0.5 + i as f32).collect();
        let mut xs = x.clone();
        xs.scale_cols(&s.iter().map(|v| 1.0 / v).collect::<Vec<_>>());
        let mut ws = w.clone();
        ws.scale_rows(&s);
        let lhs = xs.matmul(&ws);
        let rhs = x.matmul(&w);
        assert!(lhs.mse(&rhs) < 1e-10);
    }

    #[test]
    fn abs_max_reductions() {
        let a = Matrix::from_rows(&[&[-3.0, 1.0], &[2.0, -0.5]]);
        assert_eq!(a.abs_max(), 3.0);
        assert_eq!(a.row_abs_max(), vec![3.0, 2.0]);
        assert_eq!(a.col_abs_max(), vec![3.0, 1.0]);
    }

    #[test]
    fn submatrix_and_set_submatrix_round_trip() {
        let a = sample();
        let block = a.submatrix(0, 2, 1, 3);
        assert_eq!(block.as_slice(), &[2.0, 3.0, 5.0, 6.0]);
        let mut z = Matrix::zeros(3, 4);
        z.set_submatrix(1, 2, &block);
        assert_eq!(z[(1, 2)], 2.0);
        assert_eq!(z[(2, 3)], 6.0);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    fn vstack_concatenates() {
        let a = sample();
        let v = Matrix::vstack(&[a.clone(), a.clone()]);
        assert_eq!(v.shape(), (4, 3));
        assert_eq!(v.row(2), a.row(0));
    }

    #[test]
    fn col_extraction() {
        let a = sample();
        assert_eq!(a.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn mse_of_identical_is_zero() {
        let a = sample();
        assert_eq!(a.mse(&a), 0.0);
    }

    #[test]
    fn frobenius_norm_value() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn debug_is_nonempty_and_bounded() {
        let a = Matrix::zeros(100, 100);
        let s = format!("{a:?}");
        assert!(s.contains("100x100"));
        assert!(s.len() < 2_000);
    }

    #[test]
    fn map_applies_function() {
        let a = sample().map(|v| v * v);
        assert_eq!(a.row(0), &[1.0, 4.0, 9.0]);
    }

    #[test]
    fn matmul_bit_identical_across_thread_counts() {
        // 64×128 · 128×129 = ~1.06 Mflop — above the parallel threshold —
        // with a non-multiple-of-16 column count to cover the remainder
        // tile. Exact (bitwise) equality is required, not approximate.
        let mut rng = Rng::seed_from(11);
        let a = Matrix::random_normal(64, 128, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(128, 129, 0.0, 1.0, &mut rng);
        let serial = nora_parallel::with_threads(1, || a.matmul(&b));
        for threads in [2, 4, 8] {
            let par = nora_parallel::with_threads(threads, || a.matmul(&b));
            assert_eq!(serial.as_slice(), par.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn vecmat_dense_and_sparse_agree() {
        let mut rng = Rng::seed_from(12);
        let w = Matrix::random_normal(70, 33, 0.0, 1.0, &mut rng);
        // Mixed exact-zero / dense input exercises the skip branch.
        let x: Vec<f32> = (0..70)
            .map(|i| {
                if i % 3 == 0 {
                    0.0
                } else {
                    rng.normal(0.0, 1.0)
                }
            })
            .collect();
        let dense = w.vecmat(&x);
        let sparse = w.vecmat_sparse(&x);
        assert_eq!(dense.len(), sparse.len());
        for (d, s) in dense.iter().zip(&sparse) {
            assert_eq!(d, s);
        }
        // Buffer reuse path matches and reuses the allocation.
        let mut buf = vec![9.0f32; 7];
        w.vecmat_into(&x, &mut buf);
        assert_eq!(buf, dense);
    }
}
