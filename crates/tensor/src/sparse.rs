//! Packed block-wise N:M sparse weights and their decode kernels.
//!
//! NORA's outlier statistics identify layers whose weights tolerate
//! structured pruning; this module provides the storage format and the
//! compute kernels for that pruned representation. Sparsity is *block-wise
//! N:M on the reduction dimension*: input rows are grouped in runs of `M`,
//! and within every (row group × 32-column block) only the `N` rows with
//! the highest importance-weighted magnitude keep their 32-wide value row —
//! the rest are exact zeros. Sharing one kept-row set across a whole
//! 32-column block (rather than per column) is what lets the sparse kernel
//! reuse the dense kernel's register-tile structure: the `k` loop simply
//! walks fewer rows, so a 2:4 pattern does half the multiply–accumulates
//! with no per-lane gather.
//!
//! # Contracts
//!
//! * **Dense equivalence**: [`PackedNmMatrix::to_dense`] reconstructs the
//!   masked dense matrix exactly, and every kernel here is *bit-identical*
//!   to running the dense GEMM/GEMV kernel on that masked matrix. Skipped
//!   entries are exact `+0.0` weights; since every accumulator starts at
//!   `+0.0` and `acc + ±0.0 == acc` for every reachable `acc`, dropping
//!   those terms cannot change any bit of the result.
//! * **Thread invariance**: [`PackedNmMatrix::matmul`] partitions output
//!   rows exactly like `Matrix::try_matmul`, so results are bit-identical
//!   at any thread count.

use crate::Matrix;

/// One kept value row into the two-accumulator register tile — the same
/// block structure as the dense kernel's inner loop, kept as a free
/// function so the sparse `k`-walk vectorizes identically.
#[inline(always)]
fn accumulate(row: &[f32], a: f32, lo: &mut [f32; NM_JT], hi: &mut [f32; NM_JT]) {
    let blk0: &[f32; NM_JT] = row[..NM_JT].try_into().expect("half-width is NM_JT");
    let blk1: &[f32; NM_JT] = row[NM_JT..].try_into().expect("half-width is NM_JT");
    for (o, &v) in lo.iter_mut().zip(blk0) {
        *o += a * v;
    }
    for (o, &v) in hi.iter_mut().zip(blk1) {
        *o += a * v;
    }
}

/// Register-tile half-width of the sparse kernel (matches the dense
/// GEMM/GEMV kernel's `GEMM_JT`).
const NM_JT: usize = 16;

/// Column-block width of the packed layout: two [`NM_JT`] accumulator
/// blocks, matching the dense kernel's wide tile (`GEMM_JW`).
const NM_JW: usize = 2 * NM_JT;

/// A structured-sparsity pattern: keep `N` of every `M` input rows per
/// 32-column block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NmPattern {
    /// No pruning (1 of 1 — every row kept).
    Dense,
    /// 4 of 8 kept (50% density, the mildest pruned rung: same density as
    /// 2:4 but twice the selection freedom per group).
    N4M8,
    /// 2 of 4 kept (50% density, the classic hardware-friendly pattern).
    N2M4,
    /// 1 of 4 kept (25% density, the aggressive rung).
    N1M4,
}

impl NmPattern {
    /// Every pattern, mildest first (the selector's upgrade ladder).
    pub const ALL: [NmPattern; 4] =
        [NmPattern::Dense, NmPattern::N4M8, NmPattern::N2M4, NmPattern::N1M4];

    /// Rows kept per group.
    pub fn n(self) -> usize {
        match self {
            NmPattern::Dense => 1,
            NmPattern::N4M8 => 4,
            NmPattern::N2M4 => 2,
            NmPattern::N1M4 => 1,
        }
    }

    /// Group size along the reduction dimension.
    pub fn m(self) -> usize {
        match self {
            NmPattern::Dense => 1,
            NmPattern::N4M8 => 8,
            NmPattern::N2M4 => 4,
            NmPattern::N1M4 => 4,
        }
    }

    /// Fraction of weights kept (`n/m`).
    pub fn density(self) -> f64 {
        self.n() as f64 / self.m() as f64
    }

    /// Canonical label (`dense`, `4:8`, `2:4`, `1:4`) — used in CSVs,
    /// bench names, and the `NORA_SPARSITY_PATTERNS` knob.
    pub fn label(self) -> &'static str {
        match self {
            NmPattern::Dense => "dense",
            NmPattern::N4M8 => "4:8",
            NmPattern::N2M4 => "2:4",
            NmPattern::N1M4 => "1:4",
        }
    }

    /// Parses a [`NmPattern::label`] string.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.label() == s.trim())
    }
}

/// A weight matrix stored in packed block-wise N:M form.
///
/// Layout, per 32-column block (the last block may cover fewer real
/// columns; its value rows are zero-padded to 32 so indexing stays
/// uniform):
///
/// ```text
/// idx:  [group 0: N row-index nibbles (2 per byte, ascending)]
///       [group 1: …] …                       (full groups only)
/// vals: [group 0: N × 32 kept value rows]
///       [group 1: …] …
///       [tail: (rows % M) × 32 dense rows]   (partial final group)
/// ```
///
/// The partial final row group (when `rows % M != 0`) is stored dense —
/// those rows are never pruned, and they sit *after* every full group so
/// the kernel's accumulation order stays `k`-ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedNmMatrix {
    rows: usize,
    cols: usize,
    pattern: NmPattern,
    /// Kept-row index nibbles: `blocks × groups × ceil(n/2)` bytes.
    idx: Vec<u8>,
    /// Kept value rows, zero-padded to [`NM_JW`]:
    /// `blocks × (groups·n + rows % m) × 32` floats.
    vals: Vec<f32>,
}

impl PackedNmMatrix {
    /// Packs `dense` under `pattern`, keeping per (group × block) the `n`
    /// rows with the highest score `Σ_block |w| · importance`.
    ///
    /// `row_importance` (length `rows`, typically the calibrated
    /// per-channel activation scale) biases selection toward rows that
    /// carry outlier activations; `None` scores by weight magnitude alone.
    /// Ties break toward the lower row index, so packing is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `row_importance` is present with the wrong length.
    pub fn pack(dense: &Matrix, pattern: NmPattern, row_importance: Option<&[f32]>) -> Self {
        let (rows, cols) = dense.shape();
        if let Some(imp) = row_importance {
            assert_eq!(imp.len(), rows, "row_importance length mismatch");
        }
        let (n, m) = (pattern.n(), pattern.m());
        let groups = rows / m;
        let tail = rows - groups * m;
        let kept_rows = groups * n + tail;
        let blocks = cols.div_ceil(NM_JW);
        let bytes_per_group = n.div_ceil(2);
        let mut idx = Vec::with_capacity(blocks * groups * bytes_per_group);
        let mut vals = Vec::with_capacity(blocks * kept_rows * NM_JW);
        let push_row = |vals: &mut Vec<f32>, k: usize, j0: usize, j1: usize| {
            let row = &dense.row(k)[j0..j1];
            vals.extend_from_slice(row);
            vals.resize(vals.len() + (NM_JW - row.len()), 0.0);
        };
        for b in 0..blocks {
            let j0 = b * NM_JW;
            let j1 = (j0 + NM_JW).min(cols);
            for g in 0..groups {
                let score = |r: usize| {
                    let k = g * m + r;
                    let mag: f32 = dense.row(k)[j0..j1].iter().map(|v| v.abs()).sum();
                    match row_importance {
                        Some(imp) => mag * imp[k].abs(),
                        None => mag,
                    }
                };
                let mut order: Vec<usize> = (0..m).collect();
                order.sort_by(|&a, &b| score(b).total_cmp(&score(a)).then(a.cmp(&b)));
                let mut keep = order[..n].to_vec();
                keep.sort_unstable();
                for pair in keep.chunks(2) {
                    let lo = pair[0] as u8;
                    let hi = pair.get(1).copied().unwrap_or(0) as u8;
                    idx.push(lo | (hi << 4));
                }
                for &r in &keep {
                    push_row(&mut vals, g * m + r, j0, j1);
                }
            }
            for t in 0..tail {
                push_row(&mut vals, groups * m + t, j0, j1);
            }
        }
        Self {
            rows,
            cols,
            pattern,
            idx,
            vals,
        }
    }

    /// Number of input rows of the (dense-shape) matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of output columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The pattern this matrix was packed under.
    pub fn pattern(&self) -> NmPattern {
        self.pattern
    }

    /// Fraction of rows kept per column block (`(groups·n + tail) / rows`);
    /// 1.0 for empty or dense-pattern matrices.
    pub fn density(&self) -> f64 {
        if self.rows == 0 {
            return 1.0;
        }
        let m = self.pattern.m();
        let groups = self.rows / m;
        let kept = groups * self.pattern.n() + (self.rows - groups * m);
        kept as f64 / self.rows as f64
    }

    /// Reconstructs the masked dense matrix exactly (kept values verbatim,
    /// pruned positions `+0.0`).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        let (n, m) = (self.pattern.n(), self.pattern.m());
        let groups = self.rows / m;
        let tail = self.rows - groups * m;
        let bytes_per_group = n.div_ceil(2);
        let blocks = self.cols.div_ceil(NM_JW);
        let kept_rows = groups * n + tail;
        for b in 0..blocks {
            let j0 = b * NM_JW;
            let j1 = (j0 + NM_JW).min(self.cols);
            let w = j1 - j0;
            let mut vr = b * kept_rows * NM_JW;
            for g in 0..groups {
                for t in 0..n {
                    let byte = self.idx[b * groups * bytes_per_group + g * bytes_per_group + t / 2];
                    let r = usize::from(if t % 2 == 0 { byte & 0x0f } else { byte >> 4 });
                    out.row_mut(g * m + r)[j0..j1].copy_from_slice(&self.vals[vr..vr + w]);
                    vr += NM_JW;
                }
            }
            for t in 0..tail {
                out.row_mut(groups * m + t)[j0..j1].copy_from_slice(&self.vals[vr..vr + w]);
                vr += NM_JW;
            }
        }
        out
    }

    /// Sparse row kernel: `out_row += … x · W` for one activation row,
    /// walking only kept value rows. Accumulation per output element is a
    /// single `k`-ascending chain over kept entries — bit-identical to the
    /// dense kernel on [`PackedNmMatrix::to_dense`].
    fn row_kernel(&self, x: &[f32], out_row: &mut [f32]) {
        debug_assert_eq!(x.len(), self.rows);
        debug_assert_eq!(out_row.len(), self.cols);
        let (n, m) = (self.pattern.n(), self.pattern.m());
        let groups = self.rows / m;
        let bytes_per_group = n.div_ceil(2);
        let blocks = self.cols.div_ceil(NM_JW);
        let kept_rows = groups * n + (self.rows - groups * m);
        let tail_x = &x[groups * m..];
        for b in 0..blocks {
            let j0 = b * NM_JW;
            let w = (self.cols - j0).min(NM_JW);
            let idx_block =
                &self.idx[b * groups * bytes_per_group..(b + 1) * groups * bytes_per_group];
            let vals_block = &self.vals[b * kept_rows * NM_JW..(b + 1) * kept_rows * NM_JW];
            let mut kept = vals_block.chunks_exact(NM_JW);
            let mut lo = [0.0f32; NM_JT];
            let mut hi = [0.0f32; NM_JT];
            for (gx, gi) in x.chunks_exact(m).zip(idx_block.chunks_exact(bytes_per_group)) {
                let mut t = 0;
                for &byte in gi {
                    let row = kept.next().expect("packed layout: n rows per group");
                    accumulate(row, gx[usize::from(byte & 0x0f)], &mut lo, &mut hi);
                    t += 1;
                    if t < n {
                        let row = kept.next().expect("packed layout: n rows per group");
                        accumulate(row, gx[usize::from(byte >> 4)], &mut lo, &mut hi);
                        t += 1;
                    }
                }
            }
            for &a in tail_x {
                let row = kept.next().expect("packed layout: dense tail rows");
                accumulate(row, a, &mut lo, &mut hi);
            }
            if w > NM_JT {
                out_row[j0..j0 + NM_JT].copy_from_slice(&lo);
                out_row[j0 + NM_JT..j0 + w].copy_from_slice(&hi[..w - NM_JT]);
            } else {
                out_row[j0..j0 + w].copy_from_slice(&lo[..w]);
            }
        }
    }

    /// Vector–matrix product `x · W` (the decode orientation) through the
    /// sparse kernel, writing into a caller-owned buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn vecmat_into(&self, x: &[f32], out: &mut Vec<f32>) {
        assert_eq!(
            x.len(),
            self.rows,
            "vecmat: vector length {} vs rows {}",
            x.len(),
            self.rows
        );
        out.clear();
        out.resize(self.cols, 0.0);
        self.row_kernel(x, out);
    }

    /// Allocating form of [`PackedNmMatrix::vecmat_into`].
    pub fn vecmat(&self, x: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.vecmat_into(x, &mut out);
        out
    }

    /// Matrix product `x · W` for a batch of activation rows
    /// (`x` is `batch × rows`, result `batch × cols`).
    ///
    /// Output rows are independent; above the [`nora_parallel`] work
    /// threshold they are computed in parallel row chunks with the same
    /// partitioning as `Matrix::try_matmul`, so results are bit-identical
    /// at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != rows`.
    pub fn matmul(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.cols(),
            self.rows,
            "sparse matmul: x cols {} vs rows {}",
            x.cols(),
            self.rows
        );
        let (batch, n) = (x.rows(), self.cols);
        let mut out = Matrix::zeros(batch, n);
        // Work per output row ≈ kept MACs: stored values × output width.
        let threads = nora_parallel::threads_for_work(batch, self.vals.len() as u64);
        if threads > 1 && batch > 1 {
            let rows_per_chunk = batch.div_ceil(threads * 4).max(1);
            nora_parallel::for_each_chunk_mut(
                out.as_mut_slice(),
                rows_per_chunk * n,
                |ci, chunk| {
                    for (dr, out_row) in chunk.chunks_mut(n).enumerate() {
                        let i = ci * rows_per_chunk + dr;
                        self.row_kernel(x.row(i), out_row);
                    }
                },
            );
        } else {
            for i in 0..batch {
                self.row_kernel(x.row(i), out.row_mut(i));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        Matrix::random_normal(rows, cols, 0.0, 1.0, &mut rng)
    }

    /// Packed kernels must be bit-identical to the dense kernel applied to
    /// the masked dense reconstruction — across block-boundary shapes:
    /// cols not a multiple of 32 (65, 33, 7), rows not a multiple of m
    /// (70, 13, 5), and a shape smaller than one group.
    #[test]
    fn packed_kernels_match_masked_dense_bitwise() {
        for &(rows, cols) in &[(64usize, 129usize), (70, 33), (13, 64), (8, 31), (5, 7), (3, 2)] {
            for pattern in NmPattern::ALL {
                let w = random(rows, cols, 1000 + rows as u64 + cols as u64);
                let packed = PackedNmMatrix::pack(&w, pattern, None);
                let masked = packed.to_dense();
                let mut rng = Rng::seed_from(7);
                let x: Vec<f32> = (0..rows).map(|_| rng.normal(0.0, 1.0)).collect();
                let sparse = packed.vecmat(&x);
                let dense = masked.vecmat(&x);
                assert_eq!(sparse.len(), dense.len());
                for (s, d) in sparse.iter().zip(&dense) {
                    assert_eq!(s, d, "{rows}x{cols} {}", pattern.label());
                }
                let xm = Matrix::random_normal(3, rows, 0.0, 1.0, &mut rng);
                assert_eq!(
                    packed.matmul(&xm).as_slice(),
                    xm.matmul(&masked).as_slice(),
                    "{rows}x{cols} {}",
                    pattern.label()
                );
            }
        }
    }

    #[test]
    fn dense_pattern_reconstructs_exactly() {
        let w = random(12, 37, 3);
        let packed = PackedNmMatrix::pack(&w, NmPattern::Dense, None);
        assert_eq!(packed.to_dense(), w);
        assert_eq!(packed.density(), 1.0);
        let x: Vec<f32> = (0..12).map(|i| i as f32 - 6.0).collect();
        assert_eq!(packed.vecmat(&x), w.vecmat(&x));
    }

    #[test]
    fn density_matches_pattern() {
        let w = random(64, 32, 4);
        for (pattern, density) in [
            (NmPattern::N2M4, 0.5),
            (NmPattern::N4M8, 0.5),
            (NmPattern::N1M4, 0.25),
        ] {
            let packed = PackedNmMatrix::pack(&w, pattern, None);
            assert_eq!(packed.density(), density);
            assert_eq!(packed.pattern(), pattern);
            // Mask really zeroes 1-density of the weights.
            let zeros = packed
                .to_dense()
                .as_slice()
                .iter()
                .filter(|&&v| v == 0.0)
                .count();
            assert_eq!(zeros, ((1.0 - density) * (64.0 * 32.0)) as usize);
        }
    }

    #[test]
    fn partial_tail_group_stays_dense() {
        // 10 rows under 2:4: two full groups pruned, rows 8..10 kept dense.
        let w = random(10, 40, 5);
        let packed = PackedNmMatrix::pack(&w, NmPattern::N2M4, None);
        let masked = packed.to_dense();
        assert_eq!(masked.row(8), w.row(8));
        assert_eq!(masked.row(9), w.row(9));
        let kept = 2 * 2 + 2;
        assert_eq!(packed.density(), kept as f64 / 10.0);
    }

    #[test]
    fn empty_groups_keep_zero_rows_and_stay_equivalent() {
        // An all-zero group still packs n (zero) rows; kernels agree.
        let mut w = random(16, 40, 6);
        for k in 4..8 {
            w.row_mut(k).fill(0.0);
        }
        let packed = PackedNmMatrix::pack(&w, NmPattern::N2M4, None);
        let masked = packed.to_dense();
        let mut rng = Rng::seed_from(8);
        let x: Vec<f32> = (0..16).map(|_| rng.normal(0.0, 1.0)).collect();
        assert_eq!(packed.vecmat(&x), masked.vecmat(&x));
        // The zero group contributes nothing either way.
        assert!(masked.row(5).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn selection_keeps_largest_magnitude_rows() {
        // Column block is 32-wide; make row 2 of the first group dominate.
        let mut w = Matrix::zeros(4, 32);
        w.row_mut(0).fill(0.1);
        w.row_mut(1).fill(0.2);
        w.row_mut(2).fill(5.0);
        w.row_mut(3).fill(0.3);
        let packed = PackedNmMatrix::pack(&w, NmPattern::N1M4, None);
        let masked = packed.to_dense();
        assert_eq!(masked.row(2), w.row(2));
        assert!(masked.row(0).iter().all(|&v| v == 0.0));
        assert!(masked.row(1).iter().all(|&v| v == 0.0));
        assert!(masked.row(3).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn importance_biases_selection_toward_outlier_rows() {
        // Equal weight magnitudes; importance (activation scale) decides.
        let w = Matrix::full(4, 32, 1.0);
        let imp = [1.0f32, 1.0, 8.0, 1.0];
        let packed = PackedNmMatrix::pack(&w, NmPattern::N1M4, Some(&imp));
        let masked = packed.to_dense();
        assert_eq!(masked.row(2), w.row(2));
        assert!(masked.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sparse_matmul_bit_identical_across_thread_counts() {
        let w = random(128, 129, 9);
        let packed = PackedNmMatrix::pack(&w, NmPattern::N2M4, None);
        let x = random(64, 128, 10);
        let serial = nora_parallel::with_threads(1, || packed.matmul(&x));
        for threads in [2, 4, 8] {
            let par = nora_parallel::with_threads(threads, || packed.matmul(&x));
            assert_eq!(serial.as_slice(), par.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn pattern_labels_round_trip() {
        for p in NmPattern::ALL {
            assert_eq!(NmPattern::parse(p.label()), Some(p));
        }
        assert_eq!(NmPattern::parse("3:7"), None);
        assert_eq!(NmPattern::parse(" 2:4 "), Some(NmPattern::N2M4));
        assert_eq!(NmPattern::N2M4.density(), 0.5);
        assert_eq!(NmPattern::N4M8.m(), 8);
    }
}
