//! Descriptive statistics used throughout the NORA evaluation.
//!
//! The paper's analysis leans on a handful of statistics: *kurtosis* to
//! characterise how outlier-heavy a distribution is (Fig. 4, Fig. 6), *MSE*
//! to normalise noise levels across non-ideality types (Fig. 3's x-axis),
//! *SNR* for the output-current argument (Fig. 6c), and *kernel density
//! estimates* for the distribution plots (Fig. 4). All accumulations run in
//! `f64` to keep long reductions over `f32` data accurate.

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f32]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|&v| v as f64).sum::<f64>() / xs.len() as f64
}

/// Population variance (division by `n`). Returns 0 for fewer than 2 samples.
pub fn variance(xs: &[f32]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&v| (v as f64 - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f32]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson kurtosis `E[(x-µ)⁴]/σ⁴` (normal distribution ⇒ 3).
///
/// This is the convention used by the paper's Fig. 4 (“the kurtosis of
/// activation is 113.61, while the kurtosis of weight is only 1.25”, i.e.
/// values below 3 are platykurtic). Returns 0 when the variance vanishes.
///
/// # Example
///
/// ```
/// use nora_tensor::stats::kurtosis;
/// // One huge outlier among small values ⇒ heavy-tailed distribution.
/// let mut xs = vec![0.1f32; 999];
/// xs.push(50.0);
/// assert!(kurtosis(&xs) > 100.0);
/// ```
pub fn kurtosis(xs: &[f32]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let n = xs.len() as f64;
    let mut m2 = 0.0;
    let mut m4 = 0.0;
    for &v in xs {
        let d = v as f64 - m;
        let d2 = d * d;
        m2 += d2;
        m4 += d2 * d2;
    }
    m2 /= n;
    m4 /= n;
    if m2 <= 0.0 {
        return 0.0;
    }
    m4 / (m2 * m2)
}

/// Excess kurtosis (`kurtosis` − 3; normal ⇒ 0).
pub fn excess_kurtosis(xs: &[f32]) -> f64 {
    let k = kurtosis(xs);
    if k == 0.0 {
        0.0
    } else {
        k - 3.0
    }
}

/// Mean squared error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse length mismatch");
    assert!(!a.is_empty(), "mse of empty slices");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / a.len() as f64
}

/// Root mean squared error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn rmse(a: &[f32], b: &[f32]) -> f64 {
    mse(a, b).sqrt()
}

/// Signal-to-noise ratio in dB, treating `reference` as signal and
/// `reference - measured` as noise.
///
/// Returns `f64::INFINITY` when the error is exactly zero.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn snr_db(reference: &[f32], measured: &[f32]) -> f64 {
    let signal: f64 = reference.iter().map(|&v| (v as f64).powi(2)).sum();
    let noise: f64 = reference
        .iter()
        .zip(measured)
        .map(|(&r, &m)| (r as f64 - m as f64).powi(2))
        .sum();
    assert_eq!(reference.len(), measured.len(), "snr length mismatch");
    assert!(!reference.is_empty(), "snr of empty slices");
    if noise == 0.0 {
        return f64::INFINITY;
    }
    10.0 * (signal / noise).log10()
}

/// Linear interpolation percentile, `p` in `[0, 100]`.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f32], p: f64) -> f32 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile p out of range");
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = (rank - lo as f64) as f32;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// A fixed-width histogram over `[lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f32,
    hi: f32,
    counts: Vec<u64>,
    /// Samples below `lo` or above `hi`.
    outliers: u64,
    total: u64,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(xs: &[f32], lo: f32, hi: f32, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-degenerate");
        let mut counts = vec![0u64; bins];
        let mut outliers = 0u64;
        let width = (hi - lo) / bins as f32;
        for &x in xs {
            if x < lo || x > hi || !x.is_finite() {
                outliers += 1;
                continue;
            }
            let mut b = ((x - lo) / width) as usize;
            if b == bins {
                b -= 1; // x == hi lands in the last bin
            }
            counts[b] += 1;
        }
        Self {
            lo,
            hi,
            counts,
            outliers,
            total: xs.len() as u64,
        }
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of samples outside `[lo, hi]` (or non-finite).
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Total samples offered to the histogram.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Centre of bin `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn bin_center(&self, b: usize) -> f32 {
        assert!(b < self.counts.len(), "bin out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f32;
        self.lo + width * (b as f32 + 0.5)
    }

    /// Normalised density values (integrate to ≈1 over the range).
    pub fn density(&self) -> Vec<f64> {
        let width = ((self.hi - self.lo) / self.counts.len() as f32) as f64;
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / (in_range as f64 * width))
            .collect()
    }
}

/// Gaussian kernel density estimate evaluated on a uniform grid.
///
/// Reproduces the KDE panels of the paper's Fig. 4. Bandwidth defaults to
/// Silverman's rule of thumb when `bandwidth` is `None`.
///
/// Returns `(grid, density)` with `points` entries each.
///
/// # Panics
///
/// Panics if `xs` is empty, `points < 2`, or `lo >= hi`.
pub fn kde(
    xs: &[f32],
    lo: f32,
    hi: f32,
    points: usize,
    bandwidth: Option<f64>,
) -> (Vec<f32>, Vec<f64>) {
    assert!(!xs.is_empty(), "kde of empty slice");
    assert!(points >= 2, "kde needs at least two grid points");
    assert!(lo < hi, "kde range must be non-degenerate");
    let n = xs.len() as f64;
    let h = bandwidth.unwrap_or_else(|| {
        // Silverman: 0.9 * min(σ, IQR/1.34) * n^(-1/5)
        let sigma = std_dev(xs);
        let iqr = (percentile(xs, 75.0) - percentile(xs, 25.0)) as f64;
        let spread = if iqr > 0.0 {
            sigma.min(iqr / 1.34)
        } else {
            sigma
        };
        let spread = if spread > 0.0 { spread } else { 1e-6 };
        0.9 * spread * n.powf(-0.2)
    });
    let norm = 1.0 / (n * h * (2.0 * std::f64::consts::PI).sqrt());
    let grid: Vec<f32> = (0..points)
        .map(|i| lo + (hi - lo) * i as f32 / (points - 1) as f32)
        .collect();
    let density = grid
        .iter()
        .map(|&g| {
            let mut acc = 0.0f64;
            for &x in xs {
                let u = (g as f64 - x as f64) / h;
                acc += (-0.5 * u * u).exp();
            }
            acc * norm
        })
        .collect();
    (grid, density)
}

/// Streaming (Welford) accumulator for mean/variance/extremes over data too
/// large to buffer — used by calibration-style passes that observe
/// activations batch by batch.
///
/// # Example
///
/// ```
/// use nora_tensor::stats::RunningStats;
/// let mut rs = RunningStats::new();
/// for v in [1.0f32, 2.0, 3.0, 4.0] {
///     rs.push(v);
/// }
/// assert_eq!(rs.count(), 4);
/// assert!((rs.mean() - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f32,
    max: f32,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f32::INFINITY,
            max: f32::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f32) {
        self.count += 1;
        let xf = x as f64;
        let delta = xf - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (xf - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a slice of observations.
    pub fn extend(&mut self, xs: &[f32]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (+∞ when empty).
    pub fn min(&self) -> f32 {
        self.min
    }

    /// Maximum observation (−∞ when empty).
    pub fn max(&self) -> f32 {
        self.max
    }

    /// Merges another accumulator (parallel Welford combination).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Summary of a 1-D sample used in experiment reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum value.
    pub min: f32,
    /// Maximum value.
    pub max: f32,
    /// Pearson kurtosis.
    pub kurtosis: f64,
}

impl Summary {
    /// Computes all summary statistics in one pass-ish.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn of(xs: &[f32]) -> Self {
        assert!(!xs.is_empty(), "summary of empty slice");
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &v in xs {
            min = min.min(v);
            max = max.max(v);
        }
        Self {
            mean: mean(xs),
            std: std_dev(xs),
            min,
            max,
            kurtosis: kurtosis(xs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn mean_variance_basics() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(kurtosis(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn kurtosis_of_normal_is_three() {
        let mut rng = Rng::seed_from(7);
        let xs: Vec<f32> = (0..200_000).map(|_| rng.standard_normal()).collect();
        let k = kurtosis(&xs);
        assert!((k - 3.0).abs() < 0.1, "kurtosis {k}");
    }

    #[test]
    fn kurtosis_of_uniform_is_low() {
        let mut rng = Rng::seed_from(8);
        let xs: Vec<f32> = (0..100_000).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let k = kurtosis(&xs);
        assert!((k - 1.8).abs() < 0.1, "kurtosis {k}");
    }

    #[test]
    fn outliers_inflate_kurtosis() {
        let mut rng = Rng::seed_from(9);
        let mut xs: Vec<f32> = (0..10_000).map(|_| rng.standard_normal()).collect();
        let base = kurtosis(&xs);
        // Inject the LLM phenomenon: a few enormous channel values.
        for i in 0..10 {
            xs[i * 1000] = 60.0;
        }
        let spiked = kurtosis(&xs);
        assert!(spiked > 20.0 * base, "base {base} spiked {spiked}");
    }

    #[test]
    fn mse_and_rmse() {
        let a = [0.0f32, 0.0];
        let b = [3.0f32, 4.0];
        assert!((mse(&a, &b) - 12.5).abs() < 1e-12);
        assert!((rmse(&a, &b) - 12.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn snr_infinite_when_exact() {
        let a = [1.0f32, 2.0];
        assert_eq!(snr_db(&a, &a), f64::INFINITY);
    }

    #[test]
    fn snr_known_value() {
        // signal power 100, noise power 1 => 20 dB
        let r = [10.0f32];
        let m = [9.0f32];
        assert!((snr_db(&r, &m) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let xs = [3.0f32, 1.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 3.0);
        assert_eq!(percentile(&xs, 50.0), 2.0);
    }

    #[test]
    fn histogram_counts_and_outliers() {
        let xs = [0.1f32, 0.2, 0.9, 1.5, -0.5, f32::NAN];
        let h = Histogram::new(&xs, 0.0, 1.0, 2);
        assert_eq!(h.counts(), &[2, 1]);
        assert_eq!(h.outliers(), 3);
        assert_eq!(h.total(), 6);
        assert!((h.bin_center(0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn histogram_density_integrates_to_one() {
        let mut rng = Rng::seed_from(13);
        let xs: Vec<f32> = (0..50_000).map(|_| rng.uniform(0.0, 1.0)).collect();
        let h = Histogram::new(&xs, 0.0, 1.0, 50);
        let width = (1.0f32 / 50.0) as f64;
        let integral: f64 = h.density().iter().map(|d| d * width).sum();
        assert!((integral - 1.0).abs() < 1e-9, "integral {integral}");
    }

    #[test]
    fn kde_peaks_near_data_mass() {
        let mut rng = Rng::seed_from(21);
        let xs: Vec<f32> = (0..20_000).map(|_| rng.normal(0.5, 0.05)).collect();
        let (grid, dens) = kde(&xs, 0.0, 1.0, 101, None);
        let argmax = dens
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!((grid[argmax] - 0.5).abs() < 0.05, "peak at {}", grid[argmax]);
    }

    #[test]
    fn kde_integrates_to_roughly_one() {
        let mut rng = Rng::seed_from(22);
        let xs: Vec<f32> = (0..5_000).map(|_| rng.standard_normal()).collect();
        let (grid, dens) = kde(&xs, -5.0, 5.0, 201, None);
        let dx = (grid[1] - grid[0]) as f64;
        let integral: f64 = dens.iter().map(|d| d * dx).sum();
        assert!((integral - 1.0).abs() < 0.02, "integral {integral}");
    }

    #[test]
    fn running_stats_match_batch_stats() {
        let mut rng = Rng::seed_from(31);
        let xs: Vec<f32> = (0..10_000).map(|_| rng.normal(3.0, 2.0)).collect();
        let mut rs = RunningStats::new();
        rs.extend(&xs);
        assert_eq!(rs.count(), 10_000);
        assert!((rs.mean() - mean(&xs)).abs() < 1e-9);
        assert!((rs.variance() - variance(&xs)).abs() < 1e-6);
        assert_eq!(rs.min(), xs.iter().cloned().fold(f32::INFINITY, f32::min));
        assert_eq!(
            rs.max(),
            xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
        );
    }

    #[test]
    fn running_stats_merge_equals_single_pass() {
        let mut rng = Rng::seed_from(32);
        let xs: Vec<f32> = (0..5_000).map(|_| rng.uniform(-3.0, 5.0)).collect();
        let mut whole = RunningStats::new();
        whole.extend(&xs);
        let mut a = RunningStats::new();
        a.extend(&xs[..1234]);
        let mut b = RunningStats::new();
        b.extend(&xs[1234..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-6);
        // Merging an empty accumulator is a no-op.
        a.merge(&RunningStats::new());
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn running_stats_empty_defaults() {
        let rs = RunningStats::new();
        assert_eq!(rs.count(), 0);
        assert_eq!(rs.mean(), 0.0);
        assert_eq!(rs.variance(), 0.0);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }
}
