//! Dense numeric substrate for the NORA analog compute-in-memory simulator.
//!
//! This crate provides everything the higher layers need from a linear-algebra
//! and statistics toolkit, with zero external dependencies so that every
//! simulation in the workspace is bit-reproducible from a seed:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix with the GEMM/GEMV kernels,
//!   per-row/per-column reductions, and slicing used by the tile simulator.
//! * [`rng`] — a deterministic, seedable xoshiro256++ generator with normal
//!   (Box–Muller) and uniform sampling.
//! * [`stats`] — moments, kurtosis, MSE/SNR, histograms, percentiles, and the
//!   Gaussian kernel density estimate used to reproduce the paper's Fig. 4.
//! * [`quant`] — symmetric uniform quantizers shared by the DAC and ADC
//!   models of `nora-cim`.
//!
//! # Example
//!
//! ```
//! use nora_tensor::{Matrix, rng::Rng};
//!
//! let mut rng = Rng::seed_from(42);
//! let a = Matrix::random_normal(4, 8, 0.0, 1.0, &mut rng);
//! let b = Matrix::random_normal(8, 3, 0.0, 1.0, &mut rng);
//! let c = a.matmul(&b);
//! assert_eq!((c.rows(), c.cols()), (4, 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod matrix;
pub mod quant;
pub mod rng;
mod sparse;
pub mod stats;

pub use error::{Result, ShapeError};
pub use matrix::Matrix;
pub use sparse::{NmPattern, PackedNmMatrix};
