//! Symmetric uniform quantizers.
//!
//! The analog CIM interface quantizes twice per GEMV: the DAC discretises the
//! scaled input into `in_res` steps over `[-bound, bound]`, and the ADC
//! discretises the bitline read-out into `out_res` steps, saturating at the
//! converter's full-scale range. Both are instances of the same symmetric
//! mid-rise quantizer implemented here.

use crate::rng::Rng;

/// Rounding mode applied when snapping to a quantization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Rounding {
    /// Round to nearest level (ties away from zero, the hardware default).
    #[default]
    Nearest,
    /// Stochastic rounding: round up with probability equal to the fractional
    /// position between the neighbouring levels. Unbiased in expectation.
    Stochastic,
}

/// A symmetric uniform mid-rise quantizer over `[-bound, bound]` with
/// exactly `steps` representable levels.
///
/// With `steps = 2^b` this models a `b`-bit converter (the paper's Table II
/// uses 7-bit = 128 steps). The levels sit at `±(k + ½)·step` for
/// `k = 0..steps/2`, so the extreme levels are `±(bound − step/2)` — just
/// inside the rails, as on real mid-rise converter ladders; the rails
/// themselves are *not* representable. Exact zero passes through unchanged
/// (an undriven line/unprogrammed device carries no signal, and zero
/// padding or post-ReLU sparsity must stay exact). Values outside the range
/// clip toward the extreme levels — this clipping is exactly the "outlier"
/// failure mode NORA addresses.
///
/// # Example
///
/// ```
/// use nora_tensor::quant::Quantizer;
/// let q = Quantizer::new(128, 1.0);
/// let y = q.quantize(0.3333);
/// assert!((y - 0.3333).abs() <= q.step() / 2.0 + 1e-6);
/// assert_eq!(q.quantize(7.0), 1.0 - q.step() / 2.0); // clips inside the rail
/// assert_eq!(q.quantize(0.0), 0.0); // exact zero is preserved
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    steps: u32,
    bound: f32,
    step: f32,
    rounding: Rounding,
}

impl Quantizer {
    /// Creates a quantizer with `steps` levels spanning `[-bound, bound]`.
    ///
    /// # Panics
    ///
    /// Panics if `steps < 2` or `bound` is not strictly positive and finite.
    pub fn new(steps: u32, bound: f32) -> Self {
        assert!(steps >= 2, "quantizer needs at least 2 steps");
        assert!(
            bound.is_finite() && bound > 0.0,
            "bound must be positive and finite"
        );
        Self {
            steps,
            bound,
            // Hardware convention: step = 2*bound/steps, a mid-rise grid of
            // `steps` levels at ±(k + ½)·step whose extremes sit just
            // inside the rails.
            step: 2.0 * bound / steps as f32,
            rounding: Rounding::Nearest,
        }
    }

    /// Creates a `bits`-bit quantizer (`2^bits` steps) over `[-bound, bound]`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 24, or `bound` is invalid.
    pub fn with_bits(bits: u32, bound: f32) -> Self {
        assert!((1..=24).contains(&bits), "bits must be in 1..=24");
        Self::new(1 << bits, bound)
    }

    /// Returns a copy using the given rounding mode.
    pub fn with_rounding(mut self, rounding: Rounding) -> Self {
        self.rounding = rounding;
        self
    }

    /// Number of quantization steps.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// Full-scale bound.
    pub fn bound(&self) -> f32 {
        self.bound
    }

    /// Width of one quantization step.
    pub fn step(&self) -> f32 {
        self.step
    }

    /// Rounding mode.
    pub fn rounding(&self) -> Rounding {
        self.rounding
    }

    /// Whether `x` lies outside the representable range (`|x| > bound`, or
    /// NaN) and would therefore be clipped at the rails by
    /// [`Quantizer::quantize`].
    ///
    /// This is the straight-through-estimator masking predicate: gradients
    /// pass unchanged through interior points of the grid and are zeroed
    /// exactly where this returns `true`, matching the clip criterion the
    /// converters count against.
    pub fn clips(&self, x: f32) -> bool {
        x.is_nan() || x.abs() > self.bound
    }

    /// Quantizes a single value (deterministic rounding only).
    ///
    /// For [`Rounding::Stochastic`] use [`Quantizer::quantize_with`].
    pub fn quantize(&self, x: f32) -> f32 {
        match self.rounding {
            Rounding::Nearest => self.quantize_nearest(x),
            Rounding::Stochastic => {
                panic!("stochastic rounding requires quantize_with(rng)")
            }
        }
    }

    /// Quantizes a single value, drawing from `rng` when the mode is
    /// stochastic.
    pub fn quantize_with(&self, x: f32, rng: &mut Rng) -> f32 {
        match self.rounding {
            Rounding::Nearest => self.quantize_nearest(x),
            Rounding::Stochastic => self.quantize_stochastic(x, rng),
        }
    }

    fn clip(&self, x: f32) -> f32 {
        // NaN maps to 0 rather than poisoning downstream accumulations.
        if x.is_nan() {
            return 0.0;
        }
        x.clamp(-self.bound, self.bound)
    }

    fn quantize_nearest(&self, x: f32) -> f32 {
        let x = self.clip(x);
        if x == 0.0 {
            return 0.0; // undriven line: exact zero stays representable
        }
        // Nearest mid-rise level to |x| is (floor(|x|/step) + ½)·step,
        // capped at the extreme level just inside the rail. `signum` keeps
        // the map odd-symmetric.
        let half = (self.steps / 2) as f32;
        let mag = ((x.abs() / self.step).floor() + 0.5).min(half - 0.5);
        mag * self.step * x.signum()
    }

    fn quantize_stochastic(&self, x: f32, rng: &mut Rng) -> f32 {
        let x = self.clip(x);
        if x == 0.0 {
            return 0.0;
        }
        // Mid-rise levels are (m + ½)·step for integer m; x sits between
        // m = floor(x/step − ½) and m + 1. Rounding up with the fractional
        // probability keeps the expectation exactly x away from the rails.
        let half = (self.steps / 2) as f32;
        let pos = x / self.step - 0.5;
        let floor = pos.floor();
        let frac = pos - floor;
        let m = if rng.next_f32() < frac {
            floor + 1.0
        } else {
            floor
        };
        (m.clamp(-half, half - 1.0) + 0.5) * self.step
    }

    /// Quantizes a slice in place.
    pub fn quantize_slice(&self, xs: &mut [f32]) {
        for v in xs {
            *v = self.quantize_nearest(*v);
        }
    }

    /// Quantizes a slice in place with RNG support (needed for stochastic
    /// rounding; equivalent to [`Quantizer::quantize_slice`] otherwise).
    pub fn quantize_slice_with(&self, xs: &mut [f32], rng: &mut Rng) {
        for v in xs {
            *v = self.quantize_with(*v, rng);
        }
    }

    /// Fraction of values in `xs` that clip at the rails.
    pub fn clipping_rate(&self, xs: &[f32]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        let clipped = xs.iter().filter(|&&v| v.abs() > self.bound).count();
        clipped as f64 / xs.len() as f64
    }

    /// Theoretical RMS quantization error for in-range uniform inputs
    /// (`step / sqrt(12)`).
    pub fn ideal_rms_error(&self) -> f32 {
        self.step / 12f32.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_is_within_half_step_in_range() {
        let q = Quantizer::new(128, 1.0);
        let mut x = -1.0f32;
        while x <= 1.0 {
            let y = q.quantize(x);
            assert!((y - x).abs() <= q.step() / 2.0 + 1e-6, "x={x} y={y}");
            x += 0.001;
        }
    }

    #[test]
    fn quantize_clips_out_of_range() {
        // steps=16, bound=2 → step=0.25, extreme level 2 − 0.125 = 1.875:
        // out-of-range values clip to the level just inside the rail, not
        // onto the rail itself.
        let q = Quantizer::new(16, 2.0);
        assert_eq!(q.quantize(100.0), 2.0 - q.step() / 2.0);
        assert_eq!(q.quantize(-100.0), -(2.0 - q.step() / 2.0));
        assert_eq!(q.quantize(2.0), 2.0 - q.step() / 2.0);
    }

    #[test]
    fn grid_has_exactly_steps_levels_and_no_rails() {
        // Regression for the level-count off-by-one: a `steps`-level grid
        // must expose exactly `steps` distinct nonzero outputs, none of
        // them on the rails, for both rounding modes.
        for steps in [4u32, 16, 128] {
            let q = Quantizer::new(steps, 1.0);
            let mut levels: Vec<f32> = Vec::new();
            let mut x = -1.2f32;
            while x <= 1.2 {
                let y = q.quantize(if x == 0.0 { 1e-9 } else { x });
                if !levels.contains(&y) {
                    levels.push(y);
                }
                x += 1e-3;
            }
            assert_eq!(levels.len(), steps as usize, "steps={steps}");
            assert!(levels.iter().all(|&l| l.abs() < 1.0), "rail level");
            // Levels sit at ±(k + ½)·step.
            for &l in &levels {
                let k = l.abs() / q.step() - 0.5;
                assert!((k - k.round()).abs() < 1e-4, "off-grid level {l}");
            }
        }
        // Stochastic rounding snaps to the same grid.
        let q = Quantizer::new(8, 1.0).with_rounding(Rounding::Stochastic);
        let mut rng = Rng::seed_from(7);
        for i in 0..500 {
            let x = (i as f32 / 250.0) - 1.0;
            let y = q.quantize_with(if x == 0.0 { 1e-9 } else { x }, &mut rng);
            let k = y.abs() / q.step() - 0.5;
            assert!((k - k.round()).abs() < 1e-4, "off-grid stochastic {y}");
            assert!(y.abs() < 1.0);
        }
    }

    #[test]
    fn quantize_is_idempotent() {
        let q = Quantizer::new(64, 1.0);
        for i in -100..=100 {
            let x = i as f32 / 50.0;
            let once = q.quantize(x);
            assert_eq!(q.quantize(once), once);
        }
    }

    #[test]
    fn quantize_is_odd_symmetric() {
        let q = Quantizer::new(128, 1.0);
        for i in 0..200 {
            let x = i as f32 / 100.0;
            assert_eq!(q.quantize(x), -q.quantize(-x));
        }
    }

    #[test]
    fn quantize_is_monotone() {
        let q = Quantizer::new(32, 1.0);
        let mut prev = f32::NEG_INFINITY;
        let mut x = -1.5f32;
        while x <= 1.5 {
            let y = q.quantize(x);
            assert!(y >= prev, "not monotone at {x}");
            prev = y;
            x += 0.003;
        }
    }

    #[test]
    fn with_bits_matches_steps() {
        let q = Quantizer::with_bits(7, 1.0);
        assert_eq!(q.steps(), 128);
        assert!((q.step() - 2.0 / 128.0).abs() < 1e-7);
    }

    #[test]
    fn nan_maps_to_zero() {
        let q = Quantizer::new(16, 1.0);
        assert_eq!(q.quantize(f32::NAN), 0.0);
    }

    #[test]
    fn stochastic_rounding_is_unbiased() {
        let q = Quantizer::new(16, 1.0).with_rounding(Rounding::Stochastic);
        let mut rng = Rng::seed_from(3);
        let x = 0.3 * q.step() + 3.0 * q.step(); // 3.3 steps
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| q.quantize_with(x, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - x as f64).abs() < q.step() as f64 * 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "stochastic rounding requires")]
    fn stochastic_without_rng_panics() {
        let q = Quantizer::new(16, 1.0).with_rounding(Rounding::Stochastic);
        q.quantize(0.5);
    }

    #[test]
    fn clipping_rate_counts_out_of_range() {
        let q = Quantizer::new(16, 1.0);
        let xs = [0.5f32, 1.5, -2.0, 0.0];
        assert!((q.clipping_rate(&xs) - 0.5).abs() < 1e-12);
        assert_eq!(q.clipping_rate(&[]), 0.0);
    }

    #[test]
    fn quantization_mse_matches_theory() {
        // Uniform input over the full range: MSE ≈ step²/12.
        let q = Quantizer::new(128, 1.0);
        let mut rng = Rng::seed_from(5);
        let n = 200_000;
        let mut err = 0.0f64;
        for _ in 0..n {
            let x = rng.uniform(-1.0, 1.0);
            let d = (q.quantize(x) - x) as f64;
            err += d * d;
        }
        let mse = err / n as f64;
        let theory = (q.step() as f64).powi(2) / 12.0;
        assert!(
            (mse / theory - 1.0).abs() < 0.05,
            "mse {mse} vs theory {theory}"
        );
        assert!((q.ideal_rms_error() as f64 - theory.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn coarser_quantizer_has_larger_error() {
        let fine = Quantizer::with_bits(8, 1.0);
        let coarse = Quantizer::with_bits(3, 1.0);
        assert!(coarse.step() > fine.step());
        assert!(coarse.ideal_rms_error() > fine.ideal_rms_error());
    }

    #[test]
    #[should_panic(expected = "at least 2 steps")]
    fn one_step_panics() {
        Quantizer::new(1, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_bound_panics() {
        Quantizer::new(4, 0.0);
    }

    #[test]
    fn quantize_slice_applies_elementwise() {
        let q = Quantizer::new(4, 1.0);
        let mut xs = [0.1f32, 0.9, -3.0];
        q.quantize_slice(&mut xs);
        for (&v, &orig) in xs.iter().zip([0.1f32, 0.9, -3.0].iter()) {
            assert_eq!(v, q.quantize(orig));
        }
    }
}
