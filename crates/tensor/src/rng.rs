//! Deterministic random number generation.
//!
//! All stochastic behaviour in the NORA workspace — weight initialisation,
//! analog noise injection, corpus sampling — flows through [`Rng`], a
//! xoshiro256++ generator seeded via SplitMix64. This keeps every experiment
//! reproducible from a single `u64` seed and lets independent subsystems
//! derive decorrelated streams with [`Rng::fork`].

/// A seedable xoshiro256++ pseudo-random generator.
///
/// xoshiro256++ passes BigCrush and is the default engine in several
/// scientific stacks; the implementation here follows Blackman & Vigna's
/// reference code. The generator is deliberately *not* cryptographically
/// secure — it is a simulation RNG.
///
/// # Example
///
/// ```
/// use nora_tensor::rng::Rng;
/// let mut a = Rng::seed_from(7);
/// let mut b = Rng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mixing function.
///
/// Shared by [`Rng::seed_from`] (stream expansion) and [`Rng::from_key`]
/// (counter-keyed derivation): every output bit depends on every input bit,
/// so structured inputs (small integers, grid coordinates, decode positions)
/// still yield decorrelated states.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is expanded through SplitMix64 so that low-entropy seeds
    /// (0, 1, 2, …) still produce well-mixed initial states.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            mix64(sm)
        };
        let s = [next(), next(), next(), next()];
        Self {
            s,
            spare_normal: None,
        }
    }

    /// Derives a generator from a multi-component key — **stateless** stream
    /// derivation, unlike [`Rng::fork`] which advances the parent.
    ///
    /// Each key component is absorbed through a SplitMix64 round, so the
    /// resulting stream is a pure function of the component tuple: the same
    /// key always yields the same stream, keys differing in any single
    /// component (even by one counter tick) yield decorrelated streams, and
    /// no shared generator state is consumed. This is the primitive behind
    /// the serving stack's counter-keyed analog noise — a draw sequence
    /// keyed by `(deployment stream, request seed, decode position)` is
    /// reproducible under any admission order, batch composition, or thread
    /// count.
    pub fn from_key(parts: &[u64]) -> Self {
        // Domain-separation constant ("norakeyd") keeps from_key streams
        // disjoint from seed_from(p) even for a single-component key.
        let mut acc: u64 = 0x6e6f_7261_6b65_7964;
        for &p in parts {
            acc = mix64(acc.wrapping_add(0x9E37_79B9_7F4A_7C15) ^ p);
        }
        Rng::seed_from(acc)
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Useful for giving each tile / layer / noise source its own stream so
    /// that enabling one noise source does not perturb the samples drawn by
    /// another.
    pub fn fork(&mut self, stream: u64) -> Rng {
        // Mix a fresh draw with the stream id through SplitMix64 again.
        let base = self.next_u64() ^ stream.wrapping_mul(0xD2B7_4407_B1CE_6E93);
        Rng::seed_from(base)
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo <= hi, "lo must not exceed hi");
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let low = m as u64;
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as usize;
            }
            // Rejected: retry with a fresh draw.
        }
    }

    /// Draws one Box–Muller pair `(r·cosθ, r·sinθ)` in `f64`.
    ///
    /// Consumes exactly two uniform draws. Shared by [`standard_normal`]
    /// (which stashes the second value as the spare) and [`fill_normal`]
    /// (which writes both), so the two paths produce bit-identical samples.
    ///
    /// [`standard_normal`]: Rng::standard_normal
    /// [`fill_normal`]: Rng::fill_normal
    fn box_muller_pair(&mut self) -> (f64, f64) {
        // Draw u1 in (0,1] to keep ln(u1) finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        (r * theta.cos(), r * theta.sin())
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z as f32;
        }
        let (z0, z1) = self.box_muller_pair();
        self.spare_normal = Some(z1);
        z0 as f32
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or non-finite.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        assert!(std.is_finite() && std >= 0.0, "std must be finite and >= 0");
        mean + std * self.standard_normal()
    }

    /// Fills `buf` with standard normal samples.
    pub fn fill_standard_normal(&mut self, buf: &mut [f32]) {
        for v in buf {
            *v = self.standard_normal();
        }
    }

    /// Fills `buf` with `N(mean, std²)` samples, batched.
    ///
    /// Produces the **exact same draw sequence** as calling
    /// [`normal`](Rng::normal)`(mean, std)` once per element: a pending
    /// Box–Muller spare is consumed first (only if `buf` is non-empty),
    /// interior elements are filled in cosine/sine pairs, and an odd tail
    /// draws one more pair, writes the cosine half, and stashes the sine
    /// half as the spare for the *next* normal draw. Interleaving
    /// `fill_normal` with scalar `normal` calls therefore never perturbs
    /// the stream.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or non-finite.
    pub fn fill_normal(&mut self, buf: &mut [f32], mean: f32, std: f32) {
        assert!(std.is_finite() && std >= 0.0, "std must be finite and >= 0");
        if buf.is_empty() {
            return;
        }
        let mut rest = buf;
        if let Some(z) = self.spare_normal.take() {
            rest[0] = mean + std * (z as f32);
            rest = &mut rest[1..];
        }
        let mut pairs = rest.chunks_exact_mut(2);
        for pair in &mut pairs {
            let (z0, z1) = self.box_muller_pair();
            pair[0] = mean + std * (z0 as f32);
            pair[1] = mean + std * (z1 as f32);
        }
        if let [last] = pairs.into_remainder() {
            let (z0, z1) = self.box_muller_pair();
            *last = mean + std * (z0 as f32);
            self.spare_normal = Some(z1);
        }
    }

    /// Fills `buf` with `N(mean, std²)` samples via the inverse normal CDF
    /// — one uniform draw and no transcendental pair per sample, making it
    /// ~4× cheaper than the Box–Muller path on the analog decode hot loop.
    ///
    /// The draw sequence is **different** from [`Rng::fill_normal`]'s (one
    /// `u64` per sample, no spare caching), so this sampler is reserved for
    /// *new* noise streams — the serving stack's counter-keyed tile noise —
    /// while every legacy stream keeps the bit-pinned Box–Muller sequence.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or non-finite.
    pub fn fill_normal_icdf(&mut self, buf: &mut [f32], mean: f32, std: f32) {
        assert!(std.is_finite() && std >= 0.0, "std must be finite and >= 0");
        // Chunked two-pass evaluation: the uniform draws are inherently
        // sequential (one 53-bit draw per sample, stashed in `ps`), but the
        // central-region rational polynomial is branch-free over the chunk,
        // so the compiler can vectorize it. The rare tail samples (~4.85%)
        // are then patched scalar from the stashed uniforms. Per-sample
        // values are identical to the unchunked per-element loop.
        const CHUNK: usize = 64;
        let mut ps = [0.0f64; CHUNK];
        for chunk in buf.chunks_mut(CHUNK) {
            for p in ps[..chunk.len()].iter_mut() {
                *p = Self::unit_open_f64(self.next_u64());
            }
            for (v, &p) in chunk.iter_mut().zip(ps.iter()) {
                *v = mean + std * (inv_norm_cdf_central(p.clamp(P_LOW, 1.0 - P_LOW)) as f32);
            }
            for (v, &p) in chunk.iter_mut().zip(ps.iter()) {
                if !(P_LOW..=1.0 - P_LOW).contains(&p) {
                    *v = mean + std * (inv_norm_cdf(p) as f32);
                }
            }
        }
    }

    /// Maps a raw `u64` draw to a uniform in the open interval `(0, 1)`:
    /// offsetting the 53-bit integer by ½ keeps both CDF tails finite and
    /// symmetric.
    #[inline]
    fn unit_open_f64(x: u64) -> f64 {
        ((x >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
    }

    /// One standard normal sample via the inverse-CDF sampler; same draw
    /// cost and stream semantics as a length-1 [`Rng::fill_normal_icdf`].
    pub fn standard_normal_icdf(&mut self) -> f32 {
        inv_norm_cdf(Self::unit_open_f64(self.next_u64())) as f32
    }

    /// Fills `buf` with uniform samples in `[lo, hi)`.
    pub fn fill_uniform(&mut self, buf: &mut [f32], lo: f32, hi: f32) {
        for v in buf {
            *v = self.uniform(lo, hi);
        }
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        self.next_f64() < p
    }

    /// Samples an index from an (unnormalised) non-negative weight slice.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative/non-finite value, or
    /// sums to zero.
    pub fn weighted_index(&mut self, weights: &[f32]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut total = 0.0f64;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
            total += w as f64;
        }
        assert!(total > 0.0, "weights must not all be zero");
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w as f64;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `[0, n)` without replacement.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: after k swaps the first k entries are a
        // uniform sample without replacement.
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

impl Default for Rng {
    fn default() -> Self {
        Self::seed_from(0)
    }
}

/// Inverse of the standard normal CDF (quantile function), Acklam's rational
/// approximation: relative error below `1.15e-9` over the full open unit
/// interval — far beneath `f32` noise-sample resolution, and validated
/// against the erf-based reference in the noise-conformance suite.
/// Central/tail split point of Acklam's approximation (both tails).
const P_LOW: f64 = 0.02425;

/// Acklam's central-region rational polynomial.
///
/// Valid for `p` in `[P_LOW, 1 - P_LOW]` only — callers must route tail
/// samples through the full [`inv_norm_cdf`]. The branch-free body lets
/// the batched inverse-CDF fill vectorize it over a whole chunk.
#[inline]
fn inv_norm_cdf_central(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    let q = p - 0.5;
    let r = q * q;
    (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
        / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
}

fn inv_norm_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    if p < P_LOW {
        // Lower tail.
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        // Central region: rational polynomial, no transcendentals.
        inv_norm_cdf_central(p)
    } else {
        // Upper tail, by symmetry.
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let mut root = Rng::seed_from(9);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let matches = (0..256).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Rng::seed_from(5);
        for _ in 0..10_000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Rng::seed_from(11);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.below(5)] += 1;
        }
        for &c in &counts {
            // Expected 10_000 each; allow 5% slack.
            assert!((9_500..=10_500).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Rng::seed_from(17);
        let n = 200_000;
        let mut sum = 0.0f64;
        let mut sum2 = 0.0f64;
        for _ in 0..n {
            let z = rng.standard_normal() as f64;
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = Rng::seed_from(23);
        let n = 100_000;
        let (mu, sigma) = (3.0f32, 0.5f32);
        let mut sum = 0.0f64;
        let mut sum2 = 0.0f64;
        for _ in 0..n {
            let z = rng.normal(mu, sigma) as f64;
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 3.0).abs() < 0.02);
        assert!((var - 0.25).abs() < 0.02);
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = Rng::seed_from(31);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((28_500..=31_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Rng::seed_from(37);
        let w = [1.0f32, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.7..=3.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(41);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Rng::seed_from(43);
        let picks = rng.sample_indices(50, 10);
        assert_eq!(picks.len(), 10);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(picks.iter().all(|&i| i < 50));
    }

    /// `fill_normal` must reproduce the scalar `normal()` draw sequence
    /// exactly, for every slice length and spare-value state. The property
    /// is checked by interleaving batched and scalar draws in the same
    /// pattern on two generators seeded identically: one uses `fill_normal`
    /// for the batches, the other loops `normal()`. Any divergence in spare
    /// handling (consuming a spare on an empty slice, dropping the odd
    /// tail's sine half, ...) breaks the lockstep within one round.
    #[test]
    fn fill_normal_matches_scalar_sequence() {
        let mut batched = Rng::seed_from(99);
        let mut scalar = Rng::seed_from(99);
        let (mean, std) = (0.25f32, 1.5f32);
        // Lengths chosen to hit: empty slice (must not consume a spare),
        // odd/even lengths with and without a pending spare, length 1.
        let lengths = [3usize, 0, 4, 1, 0, 5, 2, 7, 1, 6];
        for (round, &len) in lengths.iter().enumerate() {
            let mut got = vec![0.0f32; len];
            batched.fill_normal(&mut got, mean, std);
            let want: Vec<f32> = (0..len).map(|_| scalar.normal(mean, std)).collect();
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "round {round} len {len} elem {i}: {g} != {w}"
                );
            }
            // Interleave scalar draws so rounds alternate spare state.
            let a = batched.normal(mean, std);
            let b = scalar.normal(mean, std);
            assert_eq!(a.to_bits(), b.to_bits(), "interleaved draw, round {round}");
        }
        // Both generators must end in the same state (raw stream + spare).
        assert_eq!(batched, scalar);
    }

    /// Same property without interleaved scalar draws: back-to-back batches
    /// whose odd lengths force the spare to carry across call boundaries.
    #[test]
    fn fill_normal_back_to_back_batches_match_scalar() {
        let mut batched = Rng::seed_from(7_654);
        let mut scalar = Rng::seed_from(7_654);
        for &len in &[5usize, 3, 0, 1, 8, 1, 1, 2] {
            let mut got = vec![0.0f32; len];
            batched.fill_normal(&mut got, -1.0, 0.04);
            for (i, g) in got.iter().enumerate() {
                let w = scalar.normal(-1.0, 0.04);
                assert_eq!(g.to_bits(), w.to_bits(), "len {len} elem {i}");
            }
        }
        assert_eq!(batched, scalar);
    }

    #[test]
    fn from_key_is_stateless_and_component_sensitive() {
        // Same key, same stream — and deriving does not consume anything.
        let mut a = Rng::from_key(&[1, 2, 3]);
        let mut b = Rng::from_key(&[1, 2, 3]);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Any single component change (even a counter tick) decorrelates.
        let base: Vec<u64> = (0..128).map(|_| Rng::from_key(&[1, 2, 3]).next_u64()).collect();
        for variant in [[0, 2, 3], [1, 3, 3], [1, 2, 4]] {
            let mut v = Rng::from_key(&variant);
            let matches = base.iter().filter(|&&x| x == v.next_u64()).count();
            assert_eq!(matches, 0, "variant {variant:?}");
        }
        // Component tuples are absorbed positionally, not merely XOR-folded.
        assert_ne!(
            Rng::from_key(&[5, 9]).next_u64(),
            Rng::from_key(&[9, 5]).next_u64()
        );
        // Distinct from the plain seed expansion of the same value.
        assert_ne!(
            Rng::from_key(&[77]).next_u64(),
            Rng::seed_from(77).next_u64()
        );
    }

    #[test]
    fn icdf_sampler_moments_and_tail_symmetry() {
        let mut rng = Rng::seed_from(171);
        let n = 200_000;
        let mut buf = vec![0.0f32; n];
        rng.fill_normal_icdf(&mut buf, 0.0, 1.0);
        let mean = buf.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
        let var = buf.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>() / n as f64
            - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
        // |z| > 2.576 should cover ~1% of samples (tails engaged, both sides).
        let lo = buf.iter().filter(|&&v| v < -2.576).count();
        let hi = buf.iter().filter(|&&v| v > 2.576).count();
        for tail in [lo, hi] {
            // Expected n * 0.005 = 1000 per tail; allow generous slack.
            assert!((700..=1300).contains(&tail), "tail counts {lo}/{hi}");
        }
    }

    #[test]
    fn inv_norm_cdf_matches_known_quantiles() {
        // (p, z_p) reference points from standard normal tables.
        for (p, z) in [
            (0.5, 0.0),
            (0.841_344_746_068_543, 1.0),
            (0.975, 1.959_963_984_540_054),
            (0.001, -3.090_232_306_167_813),
            (0.999, 3.090_232_306_167_813),
        ] {
            let got = inv_norm_cdf(p);
            assert!((got - z).abs() < 1e-6, "p={p}: {got} vs {z}");
        }
    }

    #[test]
    fn icdf_sampler_scales_and_shifts() {
        let mut rng = Rng::seed_from(173);
        let mut buf = vec![0.0f32; 50_000];
        rng.fill_normal_icdf(&mut buf, 2.0, 0.5);
        let mean = buf.iter().map(|&v| v as f64).sum::<f64>() / buf.len() as f64;
        let var = buf.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>()
            / buf.len() as f64
            - mean * mean;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn fill_normal_zero_std_is_constant() {
        let mut rng = Rng::seed_from(2);
        let mut buf = vec![9.0f32; 6];
        rng.fill_normal(&mut buf, 4.0, 0.0);
        assert!(buf.iter().all(|&v| v == 4.0), "{buf:?}");
    }

    #[test]
    #[should_panic(expected = "std must be finite")]
    fn fill_normal_negative_std_panics() {
        Rng::seed_from(0).fill_normal(&mut [0.0; 2], 0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng::seed_from(0).below(0);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn bernoulli_out_of_range_panics() {
        Rng::seed_from(0).bernoulli(1.5);
    }
}
