//! Deterministic random number generation.
//!
//! All stochastic behaviour in the NORA workspace — weight initialisation,
//! analog noise injection, corpus sampling — flows through [`Rng`], a
//! xoshiro256++ generator seeded via SplitMix64. This keeps every experiment
//! reproducible from a single `u64` seed and lets independent subsystems
//! derive decorrelated streams with [`Rng::fork`].

/// A seedable xoshiro256++ pseudo-random generator.
///
/// xoshiro256++ passes BigCrush and is the default engine in several
/// scientific stacks; the implementation here follows Blackman & Vigna's
/// reference code. The generator is deliberately *not* cryptographically
/// secure — it is a simulation RNG.
///
/// # Example
///
/// ```
/// use nora_tensor::rng::Rng;
/// let mut a = Rng::seed_from(7);
/// let mut b = Rng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is expanded through SplitMix64 so that low-entropy seeds
    /// (0, 1, 2, …) still produce well-mixed initial states.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self {
            s,
            spare_normal: None,
        }
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Useful for giving each tile / layer / noise source its own stream so
    /// that enabling one noise source does not perturb the samples drawn by
    /// another.
    pub fn fork(&mut self, stream: u64) -> Rng {
        // Mix a fresh draw with the stream id through SplitMix64 again.
        let base = self.next_u64() ^ stream.wrapping_mul(0xD2B7_4407_B1CE_6E93);
        Rng::seed_from(base)
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo <= hi, "lo must not exceed hi");
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let low = m as u64;
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as usize;
            }
            // Rejected: retry with a fresh draw.
        }
    }

    /// Draws one Box–Muller pair `(r·cosθ, r·sinθ)` in `f64`.
    ///
    /// Consumes exactly two uniform draws. Shared by [`standard_normal`]
    /// (which stashes the second value as the spare) and [`fill_normal`]
    /// (which writes both), so the two paths produce bit-identical samples.
    ///
    /// [`standard_normal`]: Rng::standard_normal
    /// [`fill_normal`]: Rng::fill_normal
    fn box_muller_pair(&mut self) -> (f64, f64) {
        // Draw u1 in (0,1] to keep ln(u1) finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        (r * theta.cos(), r * theta.sin())
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z as f32;
        }
        let (z0, z1) = self.box_muller_pair();
        self.spare_normal = Some(z1);
        z0 as f32
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or non-finite.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        assert!(std.is_finite() && std >= 0.0, "std must be finite and >= 0");
        mean + std * self.standard_normal()
    }

    /// Fills `buf` with standard normal samples.
    pub fn fill_standard_normal(&mut self, buf: &mut [f32]) {
        for v in buf {
            *v = self.standard_normal();
        }
    }

    /// Fills `buf` with `N(mean, std²)` samples, batched.
    ///
    /// Produces the **exact same draw sequence** as calling
    /// [`normal`](Rng::normal)`(mean, std)` once per element: a pending
    /// Box–Muller spare is consumed first (only if `buf` is non-empty),
    /// interior elements are filled in cosine/sine pairs, and an odd tail
    /// draws one more pair, writes the cosine half, and stashes the sine
    /// half as the spare for the *next* normal draw. Interleaving
    /// `fill_normal` with scalar `normal` calls therefore never perturbs
    /// the stream.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or non-finite.
    pub fn fill_normal(&mut self, buf: &mut [f32], mean: f32, std: f32) {
        assert!(std.is_finite() && std >= 0.0, "std must be finite and >= 0");
        if buf.is_empty() {
            return;
        }
        let mut rest = buf;
        if let Some(z) = self.spare_normal.take() {
            rest[0] = mean + std * (z as f32);
            rest = &mut rest[1..];
        }
        let mut pairs = rest.chunks_exact_mut(2);
        for pair in &mut pairs {
            let (z0, z1) = self.box_muller_pair();
            pair[0] = mean + std * (z0 as f32);
            pair[1] = mean + std * (z1 as f32);
        }
        if let [last] = pairs.into_remainder() {
            let (z0, z1) = self.box_muller_pair();
            *last = mean + std * (z0 as f32);
            self.spare_normal = Some(z1);
        }
    }

    /// Fills `buf` with uniform samples in `[lo, hi)`.
    pub fn fill_uniform(&mut self, buf: &mut [f32], lo: f32, hi: f32) {
        for v in buf {
            *v = self.uniform(lo, hi);
        }
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        self.next_f64() < p
    }

    /// Samples an index from an (unnormalised) non-negative weight slice.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative/non-finite value, or
    /// sums to zero.
    pub fn weighted_index(&mut self, weights: &[f32]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut total = 0.0f64;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
            total += w as f64;
        }
        assert!(total > 0.0, "weights must not all be zero");
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w as f64;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `[0, n)` without replacement.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: after k swaps the first k entries are a
        // uniform sample without replacement.
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

impl Default for Rng {
    fn default() -> Self {
        Self::seed_from(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let mut root = Rng::seed_from(9);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let matches = (0..256).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Rng::seed_from(5);
        for _ in 0..10_000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Rng::seed_from(11);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.below(5)] += 1;
        }
        for &c in &counts {
            // Expected 10_000 each; allow 5% slack.
            assert!((9_500..=10_500).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Rng::seed_from(17);
        let n = 200_000;
        let mut sum = 0.0f64;
        let mut sum2 = 0.0f64;
        for _ in 0..n {
            let z = rng.standard_normal() as f64;
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = Rng::seed_from(23);
        let n = 100_000;
        let (mu, sigma) = (3.0f32, 0.5f32);
        let mut sum = 0.0f64;
        let mut sum2 = 0.0f64;
        for _ in 0..n {
            let z = rng.normal(mu, sigma) as f64;
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 3.0).abs() < 0.02);
        assert!((var - 0.25).abs() < 0.02);
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = Rng::seed_from(31);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((28_500..=31_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Rng::seed_from(37);
        let w = [1.0f32, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.7..=3.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(41);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Rng::seed_from(43);
        let picks = rng.sample_indices(50, 10);
        assert_eq!(picks.len(), 10);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(picks.iter().all(|&i| i < 50));
    }

    /// `fill_normal` must reproduce the scalar `normal()` draw sequence
    /// exactly, for every slice length and spare-value state. The property
    /// is checked by interleaving batched and scalar draws in the same
    /// pattern on two generators seeded identically: one uses `fill_normal`
    /// for the batches, the other loops `normal()`. Any divergence in spare
    /// handling (consuming a spare on an empty slice, dropping the odd
    /// tail's sine half, ...) breaks the lockstep within one round.
    #[test]
    fn fill_normal_matches_scalar_sequence() {
        let mut batched = Rng::seed_from(99);
        let mut scalar = Rng::seed_from(99);
        let (mean, std) = (0.25f32, 1.5f32);
        // Lengths chosen to hit: empty slice (must not consume a spare),
        // odd/even lengths with and without a pending spare, length 1.
        let lengths = [3usize, 0, 4, 1, 0, 5, 2, 7, 1, 6];
        for (round, &len) in lengths.iter().enumerate() {
            let mut got = vec![0.0f32; len];
            batched.fill_normal(&mut got, mean, std);
            let want: Vec<f32> = (0..len).map(|_| scalar.normal(mean, std)).collect();
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "round {round} len {len} elem {i}: {g} != {w}"
                );
            }
            // Interleave scalar draws so rounds alternate spare state.
            let a = batched.normal(mean, std);
            let b = scalar.normal(mean, std);
            assert_eq!(a.to_bits(), b.to_bits(), "interleaved draw, round {round}");
        }
        // Both generators must end in the same state (raw stream + spare).
        assert_eq!(batched, scalar);
    }

    /// Same property without interleaved scalar draws: back-to-back batches
    /// whose odd lengths force the spare to carry across call boundaries.
    #[test]
    fn fill_normal_back_to_back_batches_match_scalar() {
        let mut batched = Rng::seed_from(7_654);
        let mut scalar = Rng::seed_from(7_654);
        for &len in &[5usize, 3, 0, 1, 8, 1, 1, 2] {
            let mut got = vec![0.0f32; len];
            batched.fill_normal(&mut got, -1.0, 0.04);
            for (i, g) in got.iter().enumerate() {
                let w = scalar.normal(-1.0, 0.04);
                assert_eq!(g.to_bits(), w.to_bits(), "len {len} elem {i}");
            }
        }
        assert_eq!(batched, scalar);
    }

    #[test]
    fn fill_normal_zero_std_is_constant() {
        let mut rng = Rng::seed_from(2);
        let mut buf = vec![9.0f32; 6];
        rng.fill_normal(&mut buf, 4.0, 0.0);
        assert!(buf.iter().all(|&v| v == 4.0), "{buf:?}");
    }

    #[test]
    #[should_panic(expected = "std must be finite")]
    fn fill_normal_negative_std_panics() {
        Rng::seed_from(0).fill_normal(&mut [0.0; 2], 0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng::seed_from(0).below(0);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn bernoulli_out_of_range_panics() {
        Rng::seed_from(0).bernoulli(1.5);
    }
}
